//! Multi-tenant scheduling invariants at the single-engine level:
//!
//! 1. **Conservation.** The engine sheds nothing: every request a tenant
//!    offers completes, and the per-tenant ledger partitions the run's
//!    totals exactly — across batching policies, tenant mixes, and seeds.
//! 2. **Single-tenant anchor.** A 1-tenant set reproduces the plain
//!    `run()` report bit-for-bit, with only the tenants section added.
//! 3. **Weighted-fair service.** Same-class tenants under a saturating
//!    burst are served in deficit-weighted order: at every completion
//!    prefix the weighted request counts stay within one quantum.
//! 4. **SLO-aware preemption.** Under KV pressure, batch-tier residents
//!    absorb every eviction; interactive tenants are never preempted.

use cimtpu_core::TpuConfig;
use cimtpu_models::TransformerConfig;
use cimtpu_serving::{
    ArrivalPattern, BatchPolicy, LenDist, MemoryConfig, Parallelism, PrefixTraffic, ServingEngine,
    ServingModel, ServingRun, SloClass, TenantSet, TenantSpec, TrafficSpec,
};
use cimtpu_units::Bytes;
use proptest::prelude::*;

fn tiny() -> ServingModel {
    ServingModel::Llm(TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap())
}

fn engine(policy: BatchPolicy) -> ServingEngine {
    ServingEngine::new(TpuConfig::tpuv4i(), tiny(), Parallelism::Replicated { chips: 1 }, policy)
        .unwrap()
}

fn open_loop(requests: u64, rate_rps: f64, seed: u64) -> TrafficSpec {
    TrafficSpec {
        requests,
        arrival: ArrivalPattern::OpenLoop { rate_rps },
        prompt: LenDist::Uniform { lo: 16, hi: 48 },
        steps: LenDist::Uniform { lo: 4, hi: 8 },
        prefix: PrefixTraffic::None,
        seed,
    }
}

const POLICIES: [BatchPolicy; 3] = [
    BatchPolicy::Static { batch: 4 },
    BatchPolicy::Dynamic { max_batch: 4, max_wait_ms: 0.05 },
    BatchPolicy::Continuous { max_batch: 4 },
];

/// Tenant of each completion, by id, from the merged trace (completions
/// carry no tenancy; the merged spec's request list does).
fn tenants_by_id(set: &TenantSet) -> Vec<u32> {
    let merged = set.merged_spec().unwrap();
    let mut out = vec![0u32; merged.requests as usize];
    for r in merged.generate() {
        out[r.id as usize] = r.tenant;
    }
    out
}

#[test]
fn single_tenant_set_is_bit_identical_to_plain_run() {
    for policy in POLICIES {
        let traffic = open_loop(16, 4_000.0, 7);
        let plain = engine(policy).run("anchor", &traffic).unwrap();
        let set = TenantSet::new(vec![TenantSpec::new(
            "only",
            SloClass::Standard,
            1.0,
            traffic.clone(),
        )])
        .unwrap();
        let tenanted = engine(policy).run_tenants("anchor", &set).unwrap();
        assert_eq!(tenanted.completions, plain.completions, "{}", policy.name());
        let mut stripped = tenanted.report.clone();
        let t = stripped.tenants.take().expect("tenanted run reports tenants");
        assert_eq!(stripped, plain.report, "{}", policy.name());
        // The section itself is the trivial partition.
        assert_eq!(t.tenants.len(), 1);
        assert_eq!(t.tenants[0].offered, 16);
        assert_eq!(t.tenants[0].completed, plain.report.completed);
        assert_eq!(t.fairness, 1.0);
    }
}

#[test]
fn weighted_fair_admission_stays_within_one_quantum() {
    // Two same-class tenants, weights 3:1, identical fixed-size requests,
    // all arriving at t = 0: deficit-WFQ must interleave admissions so
    // that at every point the weighted served counts agree to within one
    // request quantum. Fixed sizes make completion order the admission
    // order.
    let fixed = |seed| TrafficSpec {
        requests: 12,
        arrival: ArrivalPattern::Burst,
        prompt: LenDist::Fixed(16),
        steps: LenDist::Fixed(4),
        prefix: PrefixTraffic::None,
        seed,
    };
    let set = TenantSet::new(vec![
        TenantSpec::new("heavy", SloClass::Standard, 3.0, fixed(1)),
        TenantSpec::new("light", SloClass::Standard, 1.0, fixed(2)),
    ])
    .unwrap();
    let run = engine(BatchPolicy::Continuous { max_batch: 2 }).run_tenants("wfq", &set).unwrap();
    assert_eq!(run.report.completed, 24);
    let who = tenants_by_id(&set);
    let mut done = run.completions.clone();
    done.sort_by(|a, b| a.finish.partial_cmp(&b.finish).unwrap().then(a.id.cmp(&b.id)));
    let (mut heavy, mut light) = (0u64, 0u64);
    for c in &done {
        if who[c.id as usize] == 0 {
            heavy += 1;
        } else {
            light += 1;
        }
        // While both tenants still have queued work, the weighted counts
        // track each other within one quantum (the larger 1/weight).
        if heavy < 12 && light < 12 {
            let gap = (heavy as f64 / 3.0 - light as f64).abs();
            assert!(gap <= 1.0 + 1e-9, "weighted service gap {gap} after {heavy}h/{light}l");
        }
    }
    // The 3:1 weights show up as 3:1 service while both are backlogged:
    // by the time the light tenant has finished 4, the heavy one has
    // finished at least 9.
    let t = run.report.tenants.as_ref().unwrap();
    assert_eq!(t.tenants[0].completed, 12);
    assert_eq!(t.tenants[1].completed, 12);
}

#[test]
fn preemption_evicts_batch_before_interactive() {
    // The smoke-kv recipe (64 KiB budget, 16-token blocks) forces KV
    // evictions; with an interactive and a batch tenant resident, every
    // preemption must land on the batch tenant.
    let tight = MemoryConfig::unlimited()
        .with_budget_bytes(Bytes::from_kib(64))
        .with_block_tokens(16);
    let loop_at = |rate, seed| TrafficSpec {
        requests: 12,
        arrival: ArrivalPattern::OpenLoop { rate_rps: rate },
        prompt: LenDist::Fixed(32),
        steps: LenDist::Fixed(8),
        prefix: PrefixTraffic::None,
        seed,
    };
    let set = TenantSet::new(vec![
        TenantSpec::new("chat", SloClass::Interactive, 1.0, loop_at(20_000.0, 3)),
        TenantSpec::new("bulk", SloClass::Batch, 1.0, loop_at(20_000.0, 4)),
    ])
    .unwrap();
    let run = engine(BatchPolicy::Continuous { max_batch: 4 })
        .with_memory(tight)
        .run_tenants("evict", &set)
        .unwrap();
    assert_eq!(run.report.completed, 24, "tight KV delays but loses nothing");
    let t = run.report.tenants.as_ref().unwrap();
    let chat = &t.tenants[0];
    let bulk = &t.tenants[1];
    assert!(run.report.preemptions >= 1, "recipe must provoke evictions");
    assert_eq!(chat.preemptions, 0, "interactive resident was evicted: {t:?}");
    assert_eq!(bulk.preemptions, run.report.preemptions, "ledger conserves preemptions");
}

fn conservation(run: &ServingRun) {
    let t = run.report.tenants.as_ref().expect("multi-tenant run reports tenants");
    let mut offered = 0;
    let mut completed = 0;
    for u in &t.tenants {
        // No faults at the engine level: everything offered completes.
        assert_eq!(u.offered, u.completed + u.shed + u.timed_out);
        assert_eq!(u.shed + u.timed_out, 0);
        offered += u.offered;
        completed += u.completed;
    }
    assert_eq!(offered, run.report.offered);
    assert_eq!(completed, run.report.completed);
    assert!(t.fairness > 0.0 && t.fairness <= 1.0 + 1e-12, "fairness {}", t.fairness);
    let share: f64 = t.tenants.iter().map(|u| u.service_share).sum();
    assert!((share - 1.0).abs() < 1e-9, "service shares sum to {share}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-tenant conservation holds for every batching policy across
    /// seeds, weights, and a three-tier tenant mix — and the run replays
    /// deterministically.
    #[test]
    fn conservation_across_policies_randomized(
        seed in 0u64..1000,
        w in 1u64..8,
        rate in 2_000.0f64..20_000.0,
    ) {
        let set = TenantSet::new(vec![
            TenantSpec::new("chat", SloClass::Interactive, w as f64, open_loop(8, rate, seed)),
            TenantSpec::new("api", SloClass::Standard, 1.0, open_loop(8, rate, seed + 1)),
            TenantSpec::new("bulk", SloClass::Batch, 2.0, open_loop(8, rate / 2.0, seed + 2)),
        ]).unwrap();
        for policy in POLICIES {
            let run = engine(policy).run_tenants("conserve", &set).unwrap();
            conservation(&run);
            let again = engine(policy).run_tenants("conserve", &set).unwrap();
            prop_assert_eq!(&run.report, &again.report);
            prop_assert_eq!(&run.completions, &again.completions);
        }
    }
}
