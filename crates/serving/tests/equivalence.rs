//! Serving-vs-simulator equivalence: with batch size 1 and zero queueing,
//! the request-level engine must reproduce `Simulator::run` latency
//! **exactly** (bit-identical f64), for every batching policy and both
//! MXU kinds.

use cimtpu_core::{Simulator, TpuConfig};
use cimtpu_models::TransformerConfig;
use cimtpu_serving::{
    ArrivalPattern, BatchPolicy, LenDist, Parallelism, PrefixTraffic, ServingEngine, ServingModel,
    TrafficSpec,
};
use cimtpu_units::Seconds;

fn tiny() -> TransformerConfig {
    TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap()
}

/// One request, batch capacity 1, arrival at t = 0: the engine runs
/// prefill then `steps` decode steps back to back, exactly like pricing
/// the same workloads through the simulator by hand.
fn reference_latency(config: &TpuConfig, prompt: u64, steps: u64) -> Seconds {
    let sim = Simulator::new(config.clone()).unwrap();
    let model = tiny();
    let layers = model.layers() as f64;
    let mut t = Seconds::ZERO;
    t += sim.run(&model.prefill_layer(1, prompt).unwrap()).unwrap().total_latency() * layers;
    for s in 0..steps {
        let ctx = prompt + s + 1;
        t += sim.run(&model.decode_layer(1, ctx).unwrap()).unwrap().total_latency() * layers;
    }
    t
}

fn serving_latency(config: &TpuConfig, policy: BatchPolicy, prompt: u64, steps: u64) -> Seconds {
    let engine = ServingEngine::new(
        config.clone(),
        ServingModel::Llm(tiny()),
        Parallelism::Replicated { chips: 1 },
        policy,
    )
    .unwrap();
    let traffic = TrafficSpec {
        requests: 1,
        arrival: ArrivalPattern::Burst,
        prompt: LenDist::Fixed(prompt),
        steps: LenDist::Fixed(steps),
        prefix: PrefixTraffic::None,
        seed: 0,
    };
    let run = engine.run("equivalence", &traffic).unwrap();
    assert_eq!(run.completions.len(), 1);
    run.completions[0].latency()
}

#[test]
fn batch1_matches_simulator_exactly_for_every_policy() {
    let policies = [
        BatchPolicy::Static { batch: 1 },
        BatchPolicy::Dynamic { max_batch: 1, max_wait_ms: 0.0 },
        BatchPolicy::Continuous { max_batch: 1 },
    ];
    // Both MXU kinds: the digital systolic baseline and the CIM design.
    for config in [TpuConfig::tpuv4i(), TpuConfig::cim_base()] {
        let expected = reference_latency(&config, 32, 8);
        for policy in policies {
            let got = serving_latency(&config, policy, 32, 8);
            assert_eq!(
                got.get().to_bits(),
                expected.get().to_bits(),
                "{} on {}: {} vs {}",
                policy.name(),
                config.name(),
                got,
                expected,
            );
        }
    }
}

#[test]
fn batch1_ttft_is_prefill_latency_exactly() {
    let config = TpuConfig::tpuv4i();
    let sim = Simulator::new(config.clone()).unwrap();
    let model = tiny();
    let prefill =
        sim.run(&model.prefill_layer(1, 32).unwrap()).unwrap().total_latency()
            * model.layers() as f64;

    let engine = ServingEngine::new(
        config,
        ServingModel::Llm(model),
        Parallelism::Replicated { chips: 1 },
        BatchPolicy::Continuous { max_batch: 1 },
    )
    .unwrap();
    let traffic = TrafficSpec {
        requests: 1,
        arrival: ArrivalPattern::Burst,
        prompt: LenDist::Fixed(32),
        steps: LenDist::Fixed(4),
        prefix: PrefixTraffic::None,
        seed: 0,
    };
    let run = engine.run("ttft", &traffic).unwrap();
    assert_eq!(run.completions[0].ttft().get().to_bits(), prefill.get().to_bits());
}

#[test]
fn queueing_only_delays_requests() {
    // Two requests under capacity 1: the second's latency includes queue
    // wait, so it exceeds the single-request service time.
    let config = TpuConfig::tpuv4i();
    let solo = reference_latency(&config, 32, 8);
    let engine = ServingEngine::new(
        config,
        ServingModel::Llm(tiny()),
        Parallelism::Replicated { chips: 1 },
        BatchPolicy::Continuous { max_batch: 1 },
    )
    .unwrap();
    let traffic = TrafficSpec {
        requests: 2,
        arrival: ArrivalPattern::Burst,
        prompt: LenDist::Fixed(32),
        steps: LenDist::Fixed(8),
        prefix: PrefixTraffic::None,
        seed: 0,
    };
    let run = engine.run("queue", &traffic).unwrap();
    let first = &run.completions[0];
    let second = &run.completions[1];
    assert_eq!(first.latency().get().to_bits(), solo.get().to_bits());
    assert!(second.latency() > solo);
    // Service is sequential: the second request finishes after twice the
    // solo service time (its wait equals the first's full service).
    let rel = (second.latency().get() - 2.0 * solo.get()).abs() / solo.get();
    assert!(rel < 1e-12, "rel err {rel:e}");
}
