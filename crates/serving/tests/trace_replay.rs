//! Trace-driven traffic, end to end, against the committed golden
//! fixture:
//!
//! 1. **Byte-stable format.** Parsing the fixture and re-rendering it
//!    reproduces the record bytes exactly (modulo the comment header).
//! 2. **Double-replay identity.** Replaying the same trace twice gives
//!    bit-identical reports and completions — a trace run draws nothing
//!    from the RNG.
//! 3. **Synthesize-then-replay.** Materializing a Diurnal spec into a
//!    trace and replaying it reproduces the live-generated run
//!    token-for-token, through the engine, not just the request list.

use cimtpu_core::TpuConfig;
use cimtpu_models::TransformerConfig;
use cimtpu_serving::{
    parse_jsonl, replay_spec, synthesize, to_jsonl, ArrivalPattern, BatchPolicy, LenDist,
    Parallelism, PrefixTraffic, ServingEngine, ServingModel, SloClass, TrafficSpec,
};

const GOLDEN: &str = include_str!("fixtures/golden_trace.jsonl");

fn engine() -> ServingEngine {
    ServingEngine::new(
        TpuConfig::tpuv4i(),
        ServingModel::Llm(TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap()),
        Parallelism::Replicated { chips: 1 },
        BatchPolicy::Continuous { max_batch: 4 },
    )
    .unwrap()
}

#[test]
fn golden_fixture_parses_and_rerenders_byte_identically() {
    let records = parse_jsonl(GOLDEN).unwrap();
    assert_eq!(records.len(), 16);
    // The fixture carries all three service tiers.
    for class in [SloClass::Interactive, SloClass::Standard, SloClass::Batch] {
        assert!(records.iter().any(|r| r.class == class), "fixture lacks {class:?}");
    }
    // Writer round trip: the data lines (comments stripped) come back
    // byte-for-byte.
    let data: String =
        GOLDEN.lines().filter(|l| !l.starts_with('#')).map(|l| format!("{l}\n")).collect();
    assert_eq!(to_jsonl(&records), data);
    assert_eq!(parse_jsonl(&to_jsonl(&records)).unwrap(), records);
}

#[test]
fn golden_fixture_replays_deterministically() {
    let spec = replay_spec(parse_jsonl(GOLDEN).unwrap()).unwrap();
    let a = engine().run("golden", &spec).unwrap();
    let b = engine().run("golden", &spec).unwrap();
    assert_eq!(a.report, b.report);
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.report.completed, 16, "every fixture record completes");
    // Replay preserves the trace's per-request shape: ids are the line
    // numbers and decode lengths match the records.
    let records = parse_jsonl(GOLDEN).unwrap();
    for c in &a.completions {
        assert_eq!(c.steps, records[c.id as usize].steps);
    }
}

#[test]
fn synthesized_diurnal_replays_token_for_token_through_the_engine() {
    let spec = TrafficSpec {
        requests: 32,
        arrival: ArrivalPattern::Diurnal { peak_rps: 3_000.0, day_s: 0.03, burst_x: 2.0, bursts: 2 },
        prompt: LenDist::Uniform { lo: 8, hi: 32 },
        steps: LenDist::Uniform { lo: 2, hi: 6 },
        prefix: PrefixTraffic::None,
        seed: 0xD1A,
    };
    let live = engine().run("diurnal", &spec).unwrap();
    let replayed = replay_spec(synthesize(&spec).unwrap()).unwrap();
    let trace = engine().run("diurnal", &replayed).unwrap();
    assert_eq!(trace.completions, live.completions, "replay diverged from the live run");
    assert_eq!(trace.report, live.report);
    // And the file format is transparent: write → parse → replay again.
    let reparsed = replay_spec(parse_jsonl(&to_jsonl(&synthesize(&spec).unwrap())).unwrap());
    let again = engine().run("diurnal", &reparsed.unwrap()).unwrap();
    assert_eq!(again.completions, live.completions);
}
