//! A lazily-invalidated priority queue over per-core next-action times —
//! the event queue at the heart of the discrete-event [`drive`](crate::drive)
//! loop and the fleet drivers in `cimtpu-cluster`.
//!
//! Each slot (one per engine core, or per prefill/decode unit in a
//! disaggregated pool) carries an epoch counter. [`ActionHeap::set`]
//! bumps the slot's epoch and pushes a fresh `(time, slot, epoch)` entry;
//! entries whose epoch no longer matches are *stale* and are discarded
//! lazily when they surface at the top ([`ActionHeap::peek`]). This keeps
//! every update `O(log n)` without the `O(n)` decrease-key bookkeeping a
//! strict priority queue would need.
//!
//! # Ordering contract
//!
//! [`peek`](ActionHeap::peek) returns the slot with the minimum scheduled
//! time, breaking ties by the **lowest slot index** — exactly the rule the
//! original linear scan (`t < best` keeps the earlier index) implemented,
//! so a driver ported from the scan to the heap produces bit-identical
//! schedules. Times are ordered by [`f64::total_cmp`] with `-0.0`
//! normalized to `+0.0`, which coincides with the IEEE comparisons the
//! scan used for every non-NaN time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cimtpu_units::Seconds;

/// A scheduled time ordered by `total_cmp`, with `-0.0` folded into
/// `+0.0` so the ordering agrees with IEEE `<` on all non-NaN values.
/// Shared with the closed-loop client heap in `request.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EventKey(u64);

impl EventKey {
    pub(crate) fn new(t: Seconds) -> Self {
        // `x + 0.0` maps -0.0 to +0.0 and is the identity elsewhere;
        // total_cmp then orders by value. The monotone bit trick (flip
        // the sign bit for non-negative values) turns that order into a
        // plain u64 compare.
        let bits = (t.get() + 0.0).to_bits();
        EventKey(if bits >> 63 == 0 { bits | (1 << 63) } else { !bits })
    }
}

/// One slot's authoritative schedule: the epoch stamps heap entries so
/// superseded ones can be recognized and skipped.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    epoch: u64,
    at: Option<Seconds>,
}

/// Binary-heap event queue keyed by each slot's next-action time, with
/// lazy invalidation (see the module docs for the ordering contract).
#[derive(Debug, Default)]
pub struct ActionHeap {
    heap: BinaryHeap<Reverse<(EventKey, usize, u64)>>,
    slots: Vec<Slot>,
}

impl ActionHeap {
    /// An empty queue with `n` slots, none scheduled.
    pub fn new(n: usize) -> Self {
        ActionHeap { heap: BinaryHeap::with_capacity(n + 1), slots: vec![Slot::default(); n] }
    }

    /// Number of slots (scheduled or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the queue has no slots at all (not merely none scheduled).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reschedules slot `i` to `at` (`None` unschedules it). The previous
    /// entry, if any, becomes stale; an entry equal to the current
    /// schedule is left in place untouched.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, at: Option<Seconds>) {
        let slot = &mut self.slots[i];
        if slot.at == at {
            return; // the live heap entry (if any) already says this
        }
        slot.epoch += 1;
        slot.at = at;
        if let Some(t) = at {
            self.heap.push(Reverse((EventKey::new(t), i, slot.epoch)));
        }
    }

    /// The scheduled time of slot `i`, if any.
    pub fn scheduled(&self, i: usize) -> Option<Seconds> {
        self.slots[i].at
    }

    /// The earliest scheduled `(slot, time)` — minimum time, lowest slot
    /// index on ties — without unscheduling it, or `None` when nothing is
    /// scheduled. Stale entries encountered on the way are discarded.
    pub fn peek(&mut self) -> Option<(usize, Seconds)> {
        while let Some(&Reverse((_, i, epoch))) = self.heap.peek() {
            if self.slots[i].epoch == epoch {
                return Some((i, self.slots[i].at.expect("live entries are scheduled")));
            }
            self.heap.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_time_lowest_index_wins() {
        let mut h = ActionHeap::new(4);
        h.set(2, Some(Seconds::new(5.0)));
        h.set(0, Some(Seconds::new(7.0)));
        h.set(3, Some(Seconds::new(5.0)));
        assert_eq!(h.peek(), Some((2, Seconds::new(5.0))));
        // Tie at 5.0: slot 1 is lower than both 2 and 3.
        h.set(1, Some(Seconds::new(5.0)));
        assert_eq!(h.peek(), Some((1, Seconds::new(5.0))));
    }

    #[test]
    fn stale_entries_are_skipped() {
        let mut h = ActionHeap::new(2);
        h.set(0, Some(Seconds::new(1.0)));
        h.set(1, Some(Seconds::new(2.0)));
        h.set(0, Some(Seconds::new(3.0)));
        assert_eq!(h.peek(), Some((1, Seconds::new(2.0))));
        h.set(1, None);
        assert_eq!(h.peek(), Some((0, Seconds::new(3.0))));
        h.set(0, None);
        assert_eq!(h.peek(), None);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn equal_reschedule_keeps_the_live_entry() {
        let mut h = ActionHeap::new(1);
        h.set(0, Some(Seconds::new(4.0)));
        h.set(0, Some(Seconds::new(4.0)));
        assert_eq!(h.peek(), Some((0, Seconds::new(4.0))));
    }

    #[test]
    fn negative_zero_ties_with_positive_zero() {
        let mut h = ActionHeap::new(2);
        h.set(1, Some(Seconds::new(0.0)));
        h.set(0, Some(Seconds::new(-0.0)));
        // IEEE == holds, so the lowest index must win the tie.
        assert_eq!(h.peek().map(|(i, _)| i), Some(0));
    }

    #[test]
    fn key_order_matches_total_cmp() {
        let ts = [0.0, -0.0, 1.0, 1.5, f64::MAX, 1e-300];
        for &a in &ts {
            for &b in &ts {
                let (ka, kb) = (EventKey::new(Seconds::new(a)), EventKey::new(Seconds::new(b)));
                assert_eq!(ka.cmp(&kb), (a + 0.0).total_cmp(&(b + 0.0)), "{a} vs {b}");
            }
        }
    }
}
