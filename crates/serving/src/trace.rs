//! Trace-driven traffic: a JSONL request-trace format (parser + writer)
//! and a seeded synthesis tool, so any materializable [`TrafficSpec`] can
//! be committed as a trace file and replayed byte-identically.
//!
//! One [`TraceRecord`] per line, compact JSON, in arrival order:
//!
//! ```text
//! {"t_s":0.0,"prompt":16,"steps":4,"session":0,"tenant":0,"class":"Standard"}
//! ```
//!
//! [`synthesize`] materializes a spec into records; [`to_jsonl`] /
//! [`parse_jsonl`] round-trip the file format; [`replay_spec`] wraps a
//! record list back into an [`ArrivalPattern::Trace`] spec. Replaying a
//! synthesized trace reproduces the live-generated run token-for-token:
//! the trace carries exactly the fields [`TrafficSpec::generate`]
//! samples (arrival, prompt, steps, session, tenant, class), and the
//! replay path re-ids records `0..n` just as generation numbers requests.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Error, Result};

use crate::request::{ArrivalPattern, PrefixTraffic, TrafficSpec};
use crate::tenant::SloClass;

/// One request of a committed trace: everything [`TrafficSpec::generate`]
/// would have sampled for it. Request ids are implicit — line `i` replays
/// as request `i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Arrival time in seconds (nondecreasing across the file).
    pub t_s: f64,
    /// Prompt tokens (zero for DiT requests).
    pub prompt: u64,
    /// Generation steps (clamped to at least 1 on replay).
    pub steps: u64,
    /// Session identifier (session-affinity routing keys on it).
    pub session: u64,
    /// Tenant index (0 for single-tenant traces).
    pub tenant: u32,
    /// The request's service tier.
    pub class: SloClass,
}

/// Renders records as JSONL: one compact-JSON record per line, trailing
/// newline (byte-stable — field order is declaration order).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r).expect("trace records always serialize"));
        out.push('\n');
    }
    out
}

/// Parses a JSONL trace (blank lines and `#` comment lines are skipped).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] naming the offending line for
/// malformed JSON, or if arrival times are not nondecreasing and finite.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>> {
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let record: TraceRecord = serde_json::from_str(line).map_err(|e| {
            Error::invalid_config(format!("trace line {}: {e}", lineno + 1))
        })?;
        if !record.t_s.is_finite() || record.t_s < 0.0 {
            return Err(Error::invalid_config(format!(
                "trace line {}: arrival {} is not a finite non-negative time",
                lineno + 1,
                record.t_s
            )));
        }
        if let Some(prev) = records.last() {
            let prev: &TraceRecord = prev;
            if record.t_s < prev.t_s {
                return Err(Error::invalid_config(format!(
                    "trace line {}: arrival {} goes back in time (previous {})",
                    lineno + 1,
                    record.t_s,
                    prev.t_s
                )));
            }
        }
        records.push(record);
    }
    if records.is_empty() {
        return Err(Error::invalid_config("trace file contains no records"));
    }
    Ok(records)
}

/// Materializes a spec into trace records (the seeded synthesis tool
/// behind `--trace-out`).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for an invalid spec or a closed-loop
/// one (closed-loop arrivals depend on service progress, so they cannot
/// be written down up front).
pub fn synthesize(spec: &TrafficSpec) -> Result<Vec<TraceRecord>> {
    spec.validate()?;
    if matches!(spec.arrival, ArrivalPattern::ClosedLoop { .. }) {
        return Err(Error::invalid_config(
            "closed-loop traffic cannot be synthesized into a trace \
             (arrivals depend on service progress)",
        ));
    }
    Ok(spec
        .generate()
        .into_iter()
        .map(|r| TraceRecord {
            t_s: r.arrival_s,
            prompt: r.prompt_len,
            steps: r.steps,
            session: r.session,
            tenant: r.tenant,
            class: r.class,
        })
        .collect())
}

/// Wraps parsed records into a replayable spec. Prefix traffic is off and
/// the seed is 0: a trace file carries no prompt-content structure, and
/// replay draws nothing from the RNG (callers studying prefix sharing can
/// struct-update `prefix`/`seed` afterwards — assignment is by request id,
/// outside the RNG stream).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for an empty record list (via
/// [`TrafficSpec::validate`]).
pub fn replay_spec(records: Vec<TraceRecord>) -> Result<TrafficSpec> {
    let spec = TrafficSpec {
        requests: records.len() as u64,
        arrival: ArrivalPattern::Trace { records },
        prompt: crate::LenDist::Fixed(0),
        steps: crate::LenDist::Fixed(1),
        prefix: PrefixTraffic::None,
        seed: 0,
    };
    spec.validate()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LenDist, PrefixTraffic};

    fn diurnal_spec(seed: u64) -> TrafficSpec {
        TrafficSpec {
            requests: 40,
            arrival: ArrivalPattern::Diurnal {
                peak_rps: 2000.0,
                day_s: 2.4,
                burst_x: 2.0,
                bursts: 2,
            },
            prompt: LenDist::Uniform { lo: 8, hi: 32 },
            steps: LenDist::Uniform { lo: 2, hi: 6 },
            prefix: PrefixTraffic::None,
            seed,
        }
    }

    #[test]
    fn jsonl_round_trips_byte_identically() {
        let records = synthesize(&diurnal_spec(7)).unwrap();
        let text = to_jsonl(&records);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, records);
        assert_eq!(to_jsonl(&back), text, "writer is byte-stable");
        assert_eq!(text.lines().count(), 40);
    }

    #[test]
    fn replaying_a_synthesized_trace_matches_generation() {
        // The golden guarantee: synthesize → replay reproduces the
        // live-generated request list token-for-token (ids, arrivals,
        // prompts, steps, sessions, tenants, classes, prefixes).
        let spec = diurnal_spec(11);
        let replay = replay_spec(synthesize(&spec).unwrap()).unwrap();
        assert_eq!(replay.generate(), spec.generate());
    }

    #[test]
    fn parser_rejects_malformed_traces() {
        assert!(parse_jsonl("").is_err());
        assert!(parse_jsonl("# only a comment\n").is_err());
        assert!(parse_jsonl("{\"t_s\":0.0}").is_err(), "missing fields");
        assert!(parse_jsonl("not json").is_err());
        let ok = "{\"t_s\":1.0,\"prompt\":8,\"steps\":2,\"session\":0,\
                  \"tenant\":0,\"class\":\"Batch\"}";
        let back_in_time = format!(
            "{ok}\n{}",
            ok.replace("\"t_s\":1.0", "\"t_s\":0.5")
        );
        assert!(parse_jsonl(&back_in_time).is_err());
        let nan = ok.replace("\"t_s\":1.0", "\"t_s\":null");
        assert!(parse_jsonl(&nan).is_err());
        let parsed = parse_jsonl(ok).unwrap();
        assert_eq!(parsed[0].class, SloClass::Batch);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let records = synthesize(&diurnal_spec(3)).unwrap();
        let noisy = format!("# header\n\n{}\n# trailer\n", to_jsonl(&records[..2]));
        assert_eq!(parse_jsonl(&noisy).unwrap(), &records[..2]);
    }

    #[test]
    fn closed_loop_cannot_be_synthesized() {
        let spec = TrafficSpec {
            arrival: ArrivalPattern::ClosedLoop { clients: 2, think_ms: 1.0 },
            ..diurnal_spec(1)
        };
        assert!(synthesize(&spec).is_err());
    }
}
