//! Serving metrics: completions, latency percentiles, throughput.

use serde::{Deserialize, Serialize, Value};

use cimtpu_obs::select;
use cimtpu_units::{Joules, Seconds};

use crate::tenant::TenantReport;

/// The lifecycle record of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// When the request arrived.
    pub arrival: Seconds,
    /// When its first token (LLM) or first denoised step (DiT) was ready
    /// — the end of its prefill, or of its first step for DiT.
    pub first_token: Seconds,
    /// When its last generation step finished.
    pub finish: Seconds,
    /// Generation steps executed.
    pub steps: u64,
}

impl Completion {
    /// End-to-end request latency (arrival to last token).
    pub fn latency(&self) -> Seconds {
        self.finish - self.arrival
    }

    /// Time to first token.
    pub fn ttft(&self) -> Seconds {
        self.first_token - self.arrival
    }
}

/// Latency distribution summary, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Maximum.
    pub max_ms: f64,
}

impl LatencyStats {
    /// The all-zero summary — the only sensible summary of an empty
    /// sample set (a fault scenario can shed or time out every request,
    /// leaving no latencies to rank).
    pub const ZERO: LatencyStats =
        LatencyStats { p50_ms: 0.0, p95_ms: 0.0, p99_ms: 0.0, mean_ms: 0.0, max_ms: 0.0 };

    /// Summarizes a set of durations (nearest-rank percentiles), or
    /// [`ZERO`](Self::ZERO) for an empty set.
    pub fn from_samples_or_zero(samples: &[Seconds]) -> Self {
        if samples.is_empty() {
            LatencyStats::ZERO
        } else {
            Self::from_samples(samples)
        }
    }

    /// Summarizes a set of durations (nearest-rank percentiles).
    ///
    /// Percentiles are *exact* nearest-rank values in
    /// [`f64::total_cmp`] order, computed by streaming radix selection
    /// ([`cimtpu_obs::select`]) in O(1) memory — a 10M-request
    /// cluster run no longer materializes and sorts a 10M-element
    /// buffer. The mean is a streaming sum in sample order.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[Seconds]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let n = samples.len();
        let ranks = [
            select::nearest_rank(0.50, n),
            select::nearest_rank(0.95, n),
            select::nearest_rank(0.99, n),
            n,
        ];
        let picked = select::select_ranks(n, &ranks, || samples.iter().map(|s| s.as_millis()));
        let sum: f64 = samples.iter().map(|s| s.as_millis()).sum();
        LatencyStats {
            p50_ms: picked[0],
            p95_ms: picked[1],
            p99_ms: picked[2],
            mean_ms: sum / n as f64,
            max_ms: picked[3],
        }
    }
}

/// Memory-subsystem counters aggregated over a serving run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Running requests evicted to free KV blocks (recompute-on-resume).
    pub preemptions: u64,
    /// Total time ready requests spent blocked on KV capacity while a
    /// batch slot was otherwise free, in seconds.
    pub queue_full_s: f64,
    /// KV occupancy high-water mark as a fraction of capacity (the max
    /// over chips; 0 when the budget is unlimited).
    pub kv_hwm_frac: f64,
}

impl MemoryStats {
    /// The all-zero record (unlimited budgets report this).
    pub const NONE: MemoryStats =
        MemoryStats { preemptions: 0, queue_full_s: 0.0, kv_hwm_frac: 0.0 };

    /// Folds another chip's counters into this one (sums the event
    /// counters, maxes the occupancy mark).
    pub fn absorb(&mut self, other: &MemoryStats) {
        self.preemptions += other.preemptions;
        self.queue_full_s += other.queue_full_s;
        self.kv_hwm_frac = self.kv_hwm_frac.max(other.kv_hwm_frac);
    }
}

/// Aggregate outcome of one serving simulation.
///
/// # JSON stability
///
/// Serialization derives from this struct, and serde emits fields in
/// declaration order — never from a map, whose ordering could churn. The
/// committed `BENCH_serving.json` / `BENCH_cluster.json` baselines are
/// diffed byte-for-byte in CI, so **reordering, adding, or removing
/// fields here changes the baseline format** and requires regenerating
/// the baselines in the same commit. A unit test pins the current key
/// order. `tenants` is omitted when absent (manual [`Serialize`] below),
/// so single-tenant reports stay byte-identical.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct ServingReport {
    /// Scenario / run label.
    pub label: String,
    /// Batching policy name.
    pub policy: String,
    /// Simulated chips.
    pub chips: u64,
    /// Requests offered by the traffic spec.
    pub offered: u64,
    /// Requests completed (always equals `offered`: the trace is finite).
    pub completed: u64,
    /// Time from the first arrival to the last completion, in seconds.
    pub makespan_s: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Generation steps (tokens / diffusion steps) per second of makespan.
    pub steps_per_second: f64,
    /// End-to-end request latency distribution.
    pub latency: LatencyStats,
    /// Time-to-first-token distribution.
    pub ttft: LatencyStats,
    /// Total chip energy over all batches (active windows; idle gaps are
    /// not charged).
    pub total_energy_j: f64,
    /// Mean energy per completed request.
    pub energy_per_request_j: f64,
    /// Requests evicted to free KV blocks (recompute-on-resume).
    pub preemptions: u64,
    /// Time ready requests spent blocked on KV capacity, in seconds.
    pub queue_full_s: f64,
    /// KV occupancy high-water mark (fraction of capacity; 0 = unlimited).
    pub kv_hwm_frac: f64,
    /// Per-tenant section (goodput, SLO attainment, fairness); `None` —
    /// and omitted from JSON — for single-tenant runs.
    pub tenants: Option<TenantReport>,
}

impl Serialize for ServingReport {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("label".to_owned(), self.label.to_value()),
            ("policy".to_owned(), self.policy.to_value()),
            ("chips".to_owned(), self.chips.to_value()),
            ("offered".to_owned(), self.offered.to_value()),
            ("completed".to_owned(), self.completed.to_value()),
            ("makespan_s".to_owned(), self.makespan_s.to_value()),
            ("throughput_rps".to_owned(), self.throughput_rps.to_value()),
            ("steps_per_second".to_owned(), self.steps_per_second.to_value()),
            ("latency".to_owned(), self.latency.to_value()),
            ("ttft".to_owned(), self.ttft.to_value()),
            ("total_energy_j".to_owned(), self.total_energy_j.to_value()),
            ("energy_per_request_j".to_owned(), self.energy_per_request_j.to_value()),
            ("preemptions".to_owned(), self.preemptions.to_value()),
            ("queue_full_s".to_owned(), self.queue_full_s.to_value()),
            ("kv_hwm_frac".to_owned(), self.kv_hwm_frac.to_value()),
        ];
        if let Some(tenants) = &self.tenants {
            map.push(("tenants".to_owned(), tenants.to_value()));
        }
        Value::Map(map)
    }
}

impl ServingReport {
    /// Builds the aggregate report from per-request completions.
    ///
    /// # Panics
    ///
    /// Panics if `completions` is empty.
    pub fn from_completions(
        label: impl Into<String>,
        policy: &str,
        chips: u64,
        completions: &[Completion],
        total_energy: Joules,
        memory: MemoryStats,
    ) -> Self {
        assert!(!completions.is_empty(), "no completions to report");
        let finish = completions
            .iter()
            .map(|c| c.finish)
            .fold(Seconds::ZERO, Seconds::max);
        let first_arrival = completions
            .iter()
            .map(|c| c.arrival)
            .fold(finish, Seconds::min);
        let makespan = (finish - first_arrival).get().max(f64::MIN_POSITIVE);
        let steps: u64 = completions.iter().map(|c| c.steps).sum();
        let latencies: Vec<Seconds> = completions.iter().map(Completion::latency).collect();
        let ttfts: Vec<Seconds> = completions.iter().map(Completion::ttft).collect();
        ServingReport {
            label: label.into(),
            policy: policy.to_owned(),
            chips,
            offered: completions.len() as u64,
            completed: completions.len() as u64,
            makespan_s: makespan,
            throughput_rps: completions.len() as f64 / makespan,
            steps_per_second: steps as f64 / makespan,
            latency: LatencyStats::from_samples(&latencies),
            ttft: LatencyStats::from_samples(&ttfts),
            total_energy_j: total_energy.get(),
            energy_per_request_j: total_energy.get() / completions.len() as f64,
            preemptions: memory.preemptions,
            queue_full_s: memory.queue_full_s,
            kv_hwm_frac: memory.kv_hwm_frac,
            tenants: None,
        }
    }
}

impl std::fmt::Display for ServingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "== {} [{} batching, {} chip(s)] ==",
            self.label, self.policy, self.chips
        )?;
        writeln!(
            f,
            "completed {}/{} in {:.3} s  ({:.2} req/s, {:.1} steps/s)",
            self.completed, self.offered, self.makespan_s, self.throughput_rps,
            self.steps_per_second
        )?;
        writeln!(
            f,
            "latency ms  p50 {:.3}  p95 {:.3}  p99 {:.3}  mean {:.3}  max {:.3}",
            self.latency.p50_ms,
            self.latency.p95_ms,
            self.latency.p99_ms,
            self.latency.mean_ms,
            self.latency.max_ms
        )?;
        writeln!(
            f,
            "ttft ms     p50 {:.3}  p95 {:.3}  p99 {:.3}  mean {:.3}  max {:.3}",
            self.ttft.p50_ms, self.ttft.p95_ms, self.ttft.p99_ms, self.ttft.mean_ms,
            self.ttft.max_ms
        )?;
        writeln!(
            f,
            "energy      {:.4} J total, {:.4} J/request",
            self.total_energy_j, self.energy_per_request_j
        )?;
        writeln!(
            f,
            "kv cache    {} preemption(s), {:.4} s queue-full, {:.1}% occupancy high-water",
            self.preemptions,
            self.queue_full_s,
            self.kv_hwm_frac * 100.0
        )?;
        if let Some(tenants) = &self.tenants {
            write!(f, "{tenants}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64, arrival: f64, first: f64, finish: f64) -> Completion {
        Completion {
            id,
            arrival: Seconds::new(arrival),
            first_token: Seconds::new(first),
            finish: Seconds::new(finish),
            steps: 10,
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<Seconds> = (1..=100).map(|i| Seconds::from_millis(i as f64)).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert_eq!(stats.p50_ms, 50.0);
        assert_eq!(stats.p95_ms, 95.0);
        assert_eq!(stats.p99_ms, 99.0);
        assert_eq!(stats.max_ms, 100.0);
        assert!((stats.mean_ms - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let stats = LatencyStats::from_samples(&[Seconds::from_millis(7.0)]);
        assert_eq!(stats.p50_ms, 7.0);
        assert_eq!(stats.p99_ms, 7.0);
    }

    #[test]
    fn report_aggregates() {
        let completions = vec![c(0, 0.0, 0.5, 1.0), c(1, 1.0, 1.5, 3.0)];
        let rep = ServingReport::from_completions(
            "t",
            "static",
            1,
            &completions,
            Joules::new(4.0),
            MemoryStats::NONE,
        );
        assert_eq!(rep.completed, 2);
        assert_eq!(rep.preemptions, 0);
        assert_eq!(rep.queue_full_s, 0.0);
        assert_eq!(rep.makespan_s, 3.0);
        assert!((rep.throughput_rps - 2.0 / 3.0).abs() < 1e-12);
        assert!((rep.steps_per_second - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(rep.latency.max_ms, 2000.0);
        assert_eq!(rep.energy_per_request_j, 2.0);
    }

    #[test]
    fn makespan_starts_at_first_arrival() {
        // A trace offset in time must not inflate the makespan.
        let completions = vec![c(0, 100.0, 100.5, 101.0)];
        let rep = ServingReport::from_completions(
            "t",
            "static",
            1,
            &completions,
            Joules::ZERO,
            MemoryStats::NONE,
        );
        assert_eq!(rep.makespan_s, 1.0);
        assert_eq!(rep.throughput_rps, 1.0);
    }

    #[test]
    fn memory_stats_absorb_sums_and_maxes() {
        let mut a = MemoryStats { preemptions: 2, queue_full_s: 0.5, kv_hwm_frac: 0.75 };
        a.absorb(&MemoryStats { preemptions: 1, queue_full_s: 0.25, kv_hwm_frac: 0.5 });
        assert_eq!(a.preemptions, 3);
        assert_eq!(a.queue_full_s, 0.75);
        assert_eq!(a.kv_hwm_frac, 0.75);

        let completions = vec![c(0, 0.0, 0.5, 1.0)];
        let rep =
            ServingReport::from_completions("t", "continuous", 1, &completions, Joules::ZERO, a);
        assert_eq!(rep.preemptions, 3);
        assert_eq!(rep.queue_full_s, 0.75);
        assert_eq!(rep.kv_hwm_frac, 0.75);
        let text = rep.to_string();
        assert!(text.contains("kv cache"), "{text}");
        assert!(text.contains("3 preemption(s)"), "{text}");
    }

    #[test]
    fn json_field_order_is_declaration_order() {
        // The committed BENCH baselines are diffed byte-for-byte in CI:
        // serialization must follow struct declaration order, not any
        // map ordering. If this test fails, the baseline format changed —
        // regenerate BENCH_serving.json / BENCH_cluster.json deliberately.
        let rep = ServingReport::from_completions(
            "order",
            "static",
            1,
            &[c(0, 0.0, 0.5, 1.0)],
            Joules::new(1.0),
            MemoryStats::NONE,
        );
        let json = serde_json::to_string(&rep).unwrap();
        let keys = [
            "\"label\"",
            "\"policy\"",
            "\"chips\"",
            "\"offered\"",
            "\"completed\"",
            "\"makespan_s\"",
            "\"throughput_rps\"",
            "\"steps_per_second\"",
            "\"latency\"",
            "\"ttft\"",
            "\"total_energy_j\"",
            "\"energy_per_request_j\"",
            "\"preemptions\"",
            "\"queue_full_s\"",
            "\"kv_hwm_frac\"",
        ];
        let positions: Vec<usize> = keys
            .iter()
            .map(|k| json.find(k).unwrap_or_else(|| panic!("{k} missing from {json}")))
            .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "field order drifted: {json}"
        );
        // Nested latency stats keep their order too.
        for k in ["\"p50_ms\"", "\"p95_ms\"", "\"p99_ms\"", "\"mean_ms\"", "\"max_ms\""] {
            assert!(json.contains(k), "{k} missing");
        }
        assert!(json.find("\"p50_ms\"").unwrap() < json.find("\"p95_ms\"").unwrap());
        // The per-tenant section is omitted entirely when absent — the
        // single-tenant baseline bytes cannot change.
        assert!(!json.contains("tenants"), "{json}");
    }
}
