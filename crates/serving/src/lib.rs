//! Request-level serving simulation on top of the cimtpu chip model.
//!
//! The per-chip [`Simulator`](cimtpu_core::Simulator) prices one workload
//! at a time; real inference systems serve many concurrent requests whose
//! phases interleave. This crate adds that layer: open- and closed-loop
//! traffic ([`TrafficSpec`] — seeded, deterministic), an event-driven
//! engine ([`ServingEngine`]) that schedules phase segments onto one or
//! more simulated chips, and request-level metrics ([`ServingReport`] —
//! throughput, p50/p95/p99 latency and time-to-first-token, energy per
//! request).
//!
//! # Traffic
//!
//! [`ArrivalPattern`] covers open-loop Poisson arrivals (optionally drawn
//! from a fixed session pool), bursts, and **closed-loop** traffic:
//! `ClosedLoop { clients, think_ms }` keeps `clients` concurrent clients
//! each with one request in flight — a completion schedules that client's
//! next request after a think time, so offered load tracks service
//! capacity (the saturation-study regime). Closed-loop arrivals depend on
//! completions, so they are produced incrementally by an
//! [`ArrivalStream`] coupled to the engine through the [`drive`] loop.
//!
//! # Incremental stepping
//!
//! The scheduler is exposed as an incremental state machine,
//! [`EngineCore`] (obtained from an [`EngineSession`]): a driver pushes
//! arrivals, steps scheduling decisions one at a time, and reads
//! completions as they happen. `ServingEngine::run` is a thin driver over
//! it; the `cimtpu-cluster` crate interleaves many cores behind a router
//! to simulate whole fleets. Scheduling decisions depend only on queue
//! contents — not on when the driver pushes — so incremental and batch
//! feeding produce bit-identical results.
//!
//! Pricing reuses the whole existing stack: each distinct `(phase, batch,
//! length)` query is priced once through an
//! [`ExecutionContext`](cimtpu_core::ExecutionContext) (which memoizes
//! segments, on top of the simulator's `MappingCache` memoizing per-operator
//! map-space searches) and replayed for every batch that repeats it. Set
//! `CIMTPU_CACHE_DIR` to persist those mapping caches across processes.
//!
//! # Batching-policy semantics
//!
//! A [`BatchPolicy`] decides how queued requests are grouped:
//!
//! - **Static `{ batch }`** — the scheduler waits until exactly `batch`
//!   requests have arrived (the stream tail may form a smaller batch),
//!   then runs the batch to completion. Prompts pad to the longest member
//!   and every slot is held until the whole batch finishes: per-request
//!   completion is the batch end, the classic pre-Orca serving model.
//! - **Dynamic `{ max_batch, max_wait_ms }`** — when a chip frees, the
//!   scheduler launches whatever has queued, as soon as either `max_batch`
//!   requests are waiting or the oldest has waited `max_wait_ms`. The
//!   batch runs to completion but does not pad: as members finish, decode
//!   steps shrink to the surviving batch size, and each request completes
//!   at its own last token.
//! - **Continuous `{ max_batch }`** — scheduling happens between
//!   individual decode steps (vLLM/Orca style): new requests are admitted
//!   into free slots (their prefill runs as its own grouped segment
//!   between steps), finished requests retire immediately, and each step
//!   prices at the currently active batch size and the longest live
//!   context.
//!
//! Multi-chip configurations come in two flavours ([`Parallelism`]):
//! **replicated** chips share one queue (each batch runs on the
//! earliest-free replica), and **tensor-parallel** rings shard every layer
//! across the ring (Megatron-style, priced via `cimtpu-multi` including
//! the two per-layer ring all-reduces) and serve as one logical chip.
//!
//! # Memory subsystem
//!
//! A [`MemoryConfig`] bounds the KV cache with a paged allocator from
//! `cimtpu-kv` (per-token footprint derived from the model geometry,
//! tensor-parallel rings sharding it across devices):
//!
//! - **Admission control** — a request is admitted only when its prompt's
//!   KV blocks are free; otherwise it queues (the report's
//!   `queue_full_s` clock).
//! - **Preemption** — when a decode step cannot grow a running request by
//!   one token, the youngest resident request is evicted and later
//!   resumed by recomputing its whole context (recompute-on-resume, the
//!   recomputed prefill re-priced through the execution context); counted
//!   in `preemptions`.
//! - **Chunked prefill** — [`MemoryConfig::chunk_tokens`] splits prompts
//!   into fixed-size chunks (Sarathi-style) so decode steps of running
//!   requests interleave with prefill chunks instead of stalling behind
//!   a monolithic prompt.
//!
//! The default [`MemoryConfig::unlimited`] (infinite KV, no chunking)
//! reproduces the memory-oblivious scheduler bit-exactly.
//!
//! # Prefix sharing
//!
//! [`MemoryConfig::with_prefix_sharing`] turns on vLLM/SGLang-style
//! prefix caching: every executor keeps a
//! [`PrefixIndex`](cimtpu_kv::PrefixIndex) over its resident prompt
//! blocks, and a request whose prompt shares a head with cached content
//! attaches those blocks by reference (ref-counted, copy-on-write on
//! mid-block divergence) and prices only its prompt *tail* — a chunk
//! attending to the cached past, through the same
//! [`prefill_chunk`](PhasePricer::prefill_chunk) machinery as chunked
//! prefill, with which it composes. Traffic opts in via
//! [`TrafficSpec::prefix`] ([`PrefixTraffic::SharedHead`] models a shared
//! system prompt across request groups); [`ServingRun::prefix`] reports
//! hits, shared blocks/tokens, copy-on-write events, and evictions.
//! Sharing changes *when* work happens, never *what* is generated:
//! completions are token-for-token identical to the unshared path, and
//! with sharing off the engine is bit-identical to before.
//!
//! # Examples
//!
//! ```
//! use cimtpu_core::TpuConfig;
//! use cimtpu_models::presets;
//! use cimtpu_serving::{
//!     ArrivalPattern, BatchPolicy, LenDist, Parallelism, PrefixTraffic, ServingEngine,
//!     ServingModel, TrafficSpec,
//! };
//!
//! let engine = ServingEngine::new(
//!     TpuConfig::design_a(),
//!     ServingModel::Llm(presets::gpt3_6_7b()),
//!     Parallelism::Replicated { chips: 1 },
//!     BatchPolicy::Continuous { max_batch: 8 },
//! )?;
//! let traffic = TrafficSpec {
//!     requests: 4,
//!     arrival: ArrivalPattern::OpenLoop { rate_rps: 20.0 },
//!     prompt: LenDist::Fixed(64),
//!     steps: LenDist::Fixed(4),
//!     prefix: PrefixTraffic::None,
//!     seed: 1,
//! };
//! let run = engine.run("example", &traffic)?;
//! assert_eq!(run.report.completed, 4);
//! assert!(run.report.latency.p99_ms >= run.report.latency.p50_ms);
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
mod engine;
mod heap;
mod memory;
mod metrics;
mod policy;
mod pricer;
pub mod scenario;
mod request;
mod session;
mod step;
pub mod tenant;
pub mod trace;

pub use cimtpu_kv::{KvBudget, PrefixStats};
pub use cimtpu_obs::{
    EventKind, Recorder, SharedRecorder, TimeseriesStats, TraceFilter, TraceHandle,
};
pub use engine::{Parallelism, ServingEngine, ServingRun};
pub use memory::{parse_kv_budget, MemoryConfig};
pub use metrics::{Completion, LatencyStats, MemoryStats, ServingReport};
pub use policy::BatchPolicy;
pub use pricer::{PhasePricer, ServingModel};
pub use request::{
    ArrivalPattern, ArrivalStream, LenDist, PrefixTraffic, PromptPrefix, Request,
    TrafficSpec, DIURNAL_CURVE,
};
pub use heap::ActionHeap;
pub use session::EngineSession;
pub use step::{drive, drive_with, DriveHooks, EngineCore};
pub use tenant::{
    parse_tenants, SloClass, TenantLedger, TenantPart, TenantReport, TenantSched, TenantSet,
    TenantSpec, TenantUsage,
};
pub use trace::{parse_jsonl, replay_spec, synthesize, to_jsonl, TraceRecord};
