//! Serving-side memory configuration: KV budget, paging, chunked prefill.

use serde::{Deserialize, Serialize};

use cimtpu_kv::KvBudget;
use cimtpu_units::{Bytes, Error, Result};

/// How a serving engine manages chip memory.
///
/// The default ([`MemoryConfig::unlimited`]) reproduces the pre-memory
/// engine exactly: infinite KV capacity and monolithic prefill, so every
/// scheduling decision and priced segment is unchanged. Tightening the
/// budget turns on admission control (arrivals queue while no KV blocks
/// are free) and preemption (the youngest running request is evicted,
/// recompute-on-resume); setting [`chunk_tokens`](MemoryConfig::chunk_tokens)
/// splits prompts into fixed-size prefill chunks so decode steps of
/// running requests interleave with prefill instead of stalling behind
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Per-chip KV byte budget (replicas each get the full budget; a
    /// tensor-parallel ring shards the footprint, so the per-chip budget
    /// covers `1/p` of every token).
    pub budget: KvBudget,
    /// Tokens per paged KV block (vLLM-style; 16 is the common default).
    pub block_tokens: u64,
    /// `Some(c)` splits every prefill into chunks of `c` tokens
    /// (Sarathi-style chunked prefill); `None` runs prompts monolithically.
    pub chunk_tokens: Option<u64>,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::unlimited()
    }
}

impl MemoryConfig {
    /// Infinite KV capacity, monolithic prefill — the exact pre-memory
    /// engine behaviour.
    pub fn unlimited() -> Self {
        MemoryConfig { budget: KvBudget::Unlimited, block_tokens: 16, chunk_tokens: None }
    }

    /// An explicit per-chip KV byte budget.
    #[must_use]
    pub fn with_budget_bytes(mut self, bytes: Bytes) -> Self {
        self.budget = KvBudget::Bytes(bytes);
        self
    }

    /// Budget the KV cache with whatever HBM the resident weights leave.
    #[must_use]
    pub fn with_hbm_budget(mut self) -> Self {
        self.budget = KvBudget::HbmMinusWeights;
        self
    }

    /// Enables chunked prefill with `tokens`-token chunks.
    #[must_use]
    pub fn with_chunked_prefill(mut self, tokens: u64) -> Self {
        self.chunk_tokens = Some(tokens);
        self
    }

    /// Sets the paged-block granularity.
    #[must_use]
    pub fn with_block_tokens(mut self, tokens: u64) -> Self {
        self.block_tokens = tokens;
        self
    }

    /// Checks the configuration is usable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero block or chunk size.
    pub fn validate(&self) -> Result<()> {
        if self.block_tokens == 0 {
            return Err(Error::invalid_config("KV block size must be >= 1 token"));
        }
        if self.chunk_tokens == Some(0) {
            return Err(Error::invalid_config("prefill chunk must be >= 1 token"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited_and_valid() {
        let m = MemoryConfig::default();
        assert_eq!(m, MemoryConfig::unlimited());
        assert_eq!(m.budget, KvBudget::Unlimited);
        assert_eq!(m.chunk_tokens, None);
        m.validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let m = MemoryConfig::unlimited()
            .with_budget_bytes(Bytes::from_mib(64))
            .with_block_tokens(32)
            .with_chunked_prefill(256);
        assert_eq!(m.budget, KvBudget::Bytes(Bytes::from_mib(64)));
        assert_eq!(m.block_tokens, 32);
        assert_eq!(m.chunk_tokens, Some(256));
        m.validate().unwrap();
    }

    #[test]
    fn rejects_zero_granularities() {
        assert!(MemoryConfig::unlimited().with_block_tokens(0).validate().is_err());
        assert!(MemoryConfig::unlimited().with_chunked_prefill(0).validate().is_err());
    }
}
