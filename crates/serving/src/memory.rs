//! Serving-side memory configuration: KV budget, paging, chunked prefill.

use serde::{Deserialize, Serialize};

use cimtpu_kv::KvBudget;
use cimtpu_units::{Bytes, Error, Result};

/// How a serving engine manages chip memory.
///
/// The default ([`MemoryConfig::unlimited`]) reproduces the pre-memory
/// engine exactly: infinite KV capacity and monolithic prefill, so every
/// scheduling decision and priced segment is unchanged. Tightening the
/// budget turns on admission control (arrivals queue while no KV blocks
/// are free) and preemption (the youngest running request is evicted,
/// recompute-on-resume); setting [`chunk_tokens`](MemoryConfig::chunk_tokens)
/// splits prompts into fixed-size prefill chunks so decode steps of
/// running requests interleave with prefill instead of stalling behind
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Per-chip KV byte budget (replicas each get the full budget; a
    /// tensor-parallel ring shards the footprint, so the per-chip budget
    /// covers `1/p` of every token).
    pub budget: KvBudget,
    /// Tokens per paged KV block (vLLM-style; 16 is the common default).
    pub block_tokens: u64,
    /// `Some(c)` splits every prefill into chunks of `c` tokens
    /// (Sarathi-style chunked prefill); `None` runs prompts monolithically.
    pub chunk_tokens: Option<u64>,
    /// Enables prefix sharing: each executor keeps a
    /// [`PrefixIndex`](cimtpu_kv::PrefixIndex) over resident prompt
    /// blocks, requests with a common prompt head attach the cached
    /// blocks by reference and skip pricing the shared portion of their
    /// prefill (copy-on-write on mid-block divergence; index-held blocks
    /// evicted last-reference-only when capacity runs short). Off by
    /// default — disabled, the engine is bit-identical to the
    /// sharing-oblivious scheduler. Not supported on tensor-parallel
    /// rings (the shared-tail pricing needs
    /// [`prefill_chunk`](crate::PhasePricer::prefill_chunk)).
    pub prefix_sharing: bool,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::unlimited()
    }
}

impl MemoryConfig {
    /// Infinite KV capacity, monolithic prefill — the exact pre-memory
    /// engine behaviour.
    pub fn unlimited() -> Self {
        MemoryConfig {
            budget: KvBudget::Unlimited,
            block_tokens: 16,
            chunk_tokens: None,
            prefix_sharing: false,
        }
    }

    /// An explicit per-chip KV byte budget.
    #[must_use]
    pub fn with_budget_bytes(mut self, bytes: Bytes) -> Self {
        self.budget = KvBudget::Bytes(bytes);
        self
    }

    /// Budget the KV cache with whatever HBM the resident weights leave.
    #[must_use]
    pub fn with_hbm_budget(mut self) -> Self {
        self.budget = KvBudget::HbmMinusWeights;
        self
    }

    /// Enables chunked prefill with `tokens`-token chunks.
    #[must_use]
    pub fn with_chunked_prefill(mut self, tokens: u64) -> Self {
        self.chunk_tokens = Some(tokens);
        self
    }

    /// Sets the paged-block granularity.
    #[must_use]
    pub fn with_block_tokens(mut self, tokens: u64) -> Self {
        self.block_tokens = tokens;
        self
    }

    /// Enables prefix sharing (copy-on-write KV blocks across requests
    /// with a common prompt head).
    #[must_use]
    pub fn with_prefix_sharing(mut self) -> Self {
        self.prefix_sharing = true;
        self
    }

    /// Checks the configuration is usable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero block or chunk size.
    pub fn validate(&self) -> Result<()> {
        if self.block_tokens == 0 {
            return Err(Error::invalid_config("KV block size must be >= 1 token"));
        }
        if self.chunk_tokens == Some(0) {
            return Err(Error::invalid_config("prefill chunk must be >= 1 token"));
        }
        Ok(())
    }
}

/// Parses a CLI-style KV-budget argument — the grammar behind the
/// `--kv-budget` flag of `serve_sim` and `cluster_sim`:
///
/// - `unlimited` — no KV capacity limit ([`KvBudget::Unlimited`]);
/// - `hbm` — the chip's HBM capacity minus resident weights
///   ([`KvBudget::HbmMinusWeights`]);
/// - a byte count, optionally suffixed `KiB` / `MiB` / `GiB` / `TiB`
///   (e.g. `1GiB`, `64MiB`, `65536`) — an explicit cap
///   ([`KvBudget::Bytes`]).
///
/// Keywords and suffixes are case-insensitive.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for anything else. Negative counts
/// and counts that overflow `u64` bytes get their own messages (they are
/// the two ways a plausible-looking number is still unusable) rather
/// than the generic grammar error.
pub fn parse_kv_budget(arg: &str) -> Result<KvBudget> {
    let t = arg.trim();
    if t.eq_ignore_ascii_case("unlimited") {
        return Ok(KvBudget::Unlimited);
    }
    if t.eq_ignore_ascii_case("hbm") {
        return Ok(KvBudget::HbmMinusWeights);
    }
    let lower = t.to_ascii_lowercase();
    let (digits, shift) = if let Some(n) = lower.strip_suffix("tib") {
        (n, 40)
    } else if let Some(n) = lower.strip_suffix("gib") {
        (n, 30)
    } else if let Some(n) = lower.strip_suffix("mib") {
        (n, 20)
    } else if let Some(n) = lower.strip_suffix("kib") {
        (n, 10)
    } else {
        (lower.as_str(), 0)
    };
    let bad = || {
        Error::invalid_config(format!(
            "bad KV budget '{arg}': want 'unlimited', 'hbm', or a byte count with an \
             optional KiB/MiB/GiB/TiB suffix (e.g. 1GiB)"
        ))
    };
    let digits = digits.trim();
    if digits.starts_with('-') {
        return Err(Error::invalid_config(format!(
            "bad KV budget '{arg}': a KV budget cannot be negative"
        )));
    }
    let overflow = || {
        Error::invalid_config(format!(
            "bad KV budget '{arg}': overflows the u64 byte range"
        ))
    };
    let n: u64 = digits.parse().map_err(|e: std::num::ParseIntError| {
        if matches!(e.kind(), std::num::IntErrorKind::PosOverflow) {
            overflow()
        } else {
            bad()
        }
    })?;
    let bytes =
        n.checked_shl(shift).filter(|b| b >> shift == n).ok_or_else(overflow)?;
    Ok(KvBudget::Bytes(Bytes::new(bytes)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited_and_valid() {
        let m = MemoryConfig::default();
        assert_eq!(m, MemoryConfig::unlimited());
        assert_eq!(m.budget, KvBudget::Unlimited);
        assert_eq!(m.chunk_tokens, None);
        m.validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let m = MemoryConfig::unlimited()
            .with_budget_bytes(Bytes::from_mib(64))
            .with_block_tokens(32)
            .with_chunked_prefill(256)
            .with_prefix_sharing();
        assert_eq!(m.budget, KvBudget::Bytes(Bytes::from_mib(64)));
        assert_eq!(m.block_tokens, 32);
        assert_eq!(m.chunk_tokens, Some(256));
        assert!(m.prefix_sharing);
        assert!(!MemoryConfig::unlimited().prefix_sharing, "off by default");
        m.validate().unwrap();
    }

    #[test]
    fn rejects_zero_granularities() {
        assert!(MemoryConfig::unlimited().with_block_tokens(0).validate().is_err());
        assert!(MemoryConfig::unlimited().with_chunked_prefill(0).validate().is_err());
    }

    #[test]
    fn kv_budget_parsing() {
        assert_eq!(parse_kv_budget("unlimited").unwrap(), KvBudget::Unlimited);
        assert_eq!(parse_kv_budget("UNLIMITED").unwrap(), KvBudget::Unlimited);
        assert_eq!(parse_kv_budget("hbm").unwrap(), KvBudget::HbmMinusWeights);
        assert_eq!(
            parse_kv_budget("65536").unwrap(),
            KvBudget::Bytes(Bytes::from_kib(64))
        );
        assert_eq!(
            parse_kv_budget("64KiB").unwrap(),
            KvBudget::Bytes(Bytes::from_kib(64))
        );
        assert_eq!(
            parse_kv_budget("2mib").unwrap(),
            KvBudget::Bytes(Bytes::from_mib(2))
        );
        assert_eq!(
            parse_kv_budget(" 1GiB ").unwrap(),
            KvBudget::Bytes(Bytes::from_gib(1))
        );
        assert_eq!(
            parse_kv_budget("2TiB").unwrap(),
            KvBudget::Bytes(Bytes::from_gib(2048))
        );
        assert_eq!(
            parse_kv_budget(" 1tib ").unwrap(),
            KvBudget::Bytes(Bytes::from_gib(1024))
        );
        assert!(parse_kv_budget("").is_err());
        assert!(parse_kv_budget("1GB").is_err());
    }

    #[test]
    fn kv_budget_negative_and_overflow_are_typed() {
        let msg = |arg: &str| parse_kv_budget(arg).unwrap_err().to_string();
        assert!(msg("-3").contains("cannot be negative"), "{}", msg("-3"));
        assert!(msg("-1GiB").contains("cannot be negative"), "{}", msg("-1GiB"));
        // Digit-string overflow of u64 itself…
        assert!(msg("99999999999999999999GiB").contains("overflows"));
        // …and value overflow from the suffix shift (dropped high bits) are
        // both rejected as overflow, not wrapped and not a grammar error.
        assert!(msg("18446744073709551615GiB").contains("overflows"));
        assert!(msg("16777216TiB").contains("overflows"));
        // Junk stays the generic grammar error.
        assert!(msg("1PiB").contains("optional KiB/MiB/GiB/TiB suffix"));
    }
}
