//! Phase pricing for the serving loop: segment costs per (phase, batch,
//! length), memoized on top of [`ExecutionContext`].

use std::cell::RefCell;
use std::collections::HashMap;

use cimtpu_core::{ExecutionContext, SegmentCost, Simulator};
use cimtpu_models::{DitConfig, TransformerConfig, Workload};
use cimtpu_multi::{tensor_parallel, MultiTpu};
use cimtpu_units::{Bytes, Result};

/// The model a serving engine hosts.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingModel {
    /// An autoregressive LLM: prefill phase + per-token decode steps.
    Llm(TransformerConfig),
    /// A diffusion transformer: per-request denoising steps at a fixed
    /// image resolution (no prefill phase).
    Dit {
        /// The DiT geometry.
        dit: DitConfig,
        /// Square image resolution in pixels.
        resolution: u64,
    },
}

impl ServingModel {
    /// Whether requests carry a prefill phase.
    pub fn has_prefill(&self) -> bool {
        matches!(self, ServingModel::Llm(_))
    }

    /// The model's display name.
    pub fn name(&self) -> &str {
        match self {
            ServingModel::Llm(m) => m.name(),
            ServingModel::Dit { dit, .. } => dit.transformer().name(),
        }
    }
}

/// Memo key: phase tag + the shape knobs that vary at runtime (batch,
/// length, and — for chunked prefill — the cached-context length).
type Key = (u8, u64, u64, u64);
const PREFILL: u8 = 0;
const STEP: u8 = 1;
const CHUNK: u8 = 2;

/// Prices serving phases on one chip (or one tensor-parallel ring),
/// memoizing each distinct `(phase, batch, length)` query. The heavy
/// lifting is shared three levels down: the pricer memoizes whole phases,
/// the [`ExecutionContext`] memoizes segments, and the simulator's
/// `MappingCache` memoizes per-operator map-space searches.
///
/// This is the pricing back-end of the serving engine, exposed so
/// fleet-level drivers (the `cimtpu-cluster` crate's disaggregated
/// prefill/decode pools) can price phases against a replica without going
/// through the full batching engine. Obtain one from
/// [`EngineSession::pricer`](crate::EngineSession::pricer) or directly via
/// [`PhasePricer::single`] / [`PhasePricer::tensor_parallel`].
#[derive(Debug)]
pub struct PhasePricer<'a> {
    model: &'a ServingModel,
    cx: ExecutionContext<'a>,
    /// Tensor-parallel ring; `None` prices whole layers on `cx`'s chip.
    ring: Option<&'a MultiTpu>,
    memo: RefCell<HashMap<Key, SegmentCost>>,
}

impl<'a> PhasePricer<'a> {
    /// A pricer for `model` hosted on the single chip `sim` simulates.
    pub fn single(model: &'a ServingModel, sim: &'a Simulator) -> Self {
        PhasePricer {
            model,
            cx: sim.execution_context(),
            ring: None,
            memo: RefCell::new(HashMap::new()),
        }
    }

    /// A pricer for `model` sharded across the tensor-parallel `ring`.
    pub fn tensor_parallel(model: &'a ServingModel, ring: &'a MultiTpu) -> Self {
        PhasePricer {
            model,
            cx: ring.simulator().execution_context(),
            ring: Some(ring),
            memo: RefCell::new(HashMap::new()),
        }
    }

    fn memoized(
        &self,
        key: Key,
        build: impl FnOnce() -> Result<SegmentCost>,
    ) -> Result<SegmentCost> {
        if let Some(cost) = self.memo.borrow().get(&key) {
            return Ok(*cost);
        }
        let cost = build()?;
        self.memo.borrow_mut().insert(key, cost);
        Ok(cost)
    }

    /// Whole-workload cost through the execution context. Pricing the flat
    /// op list keeps the summation order identical to `Simulator::run`,
    /// so a batch-1 serving run reproduces its latency bit-exactly.
    fn price(&self, w: &Workload) -> Result<SegmentCost> {
        self.cx.price_ops(w.ops())
    }

    /// Cost of one sharded layer on every ring device: shard compute (the
    /// slowest device bounds latency) plus two ring all-reduces, energy
    /// multiplied across the `p` participating chips.
    fn tp_layer(&self, ring: &MultiTpu, shard: &Workload, activations: Bytes) -> Result<SegmentCost> {
        let mut cost = self.price(shard)?;
        let p = ring.devices() as f64;
        cost.latency += ring.topology().all_reduce_time(activations) * 2.0;
        cost.mxu_energy = cost.mxu_energy * p;
        cost.vpu_energy = cost.vpu_energy * p;
        cost.hbm_bytes = Bytes::new((cost.hbm_bytes.get() as f64 * p) as u64);
        Ok(cost)
    }

    /// Prefill cost for `batch` requests of (padded) prompt length
    /// `prompt`. Zero for models without a prefill phase.
    ///
    /// # Errors
    ///
    /// Returns an error if an operator cannot be mapped onto the hardware.
    pub fn prefill(&self, batch: u64, prompt: u64) -> Result<SegmentCost> {
        let ServingModel::Llm(model) = self.model else {
            return Ok(SegmentCost::ZERO);
        };
        self.memoized((PREFILL, batch, prompt, 0), || {
            let layers = model.layers() as f64;
            match self.ring {
                None => Ok(self.price(&model.prefill_layer(batch, prompt)?)?.repeated(layers)),
                Some(ring) => {
                    let shard =
                        tensor_parallel::prefill_layer_shard(model, batch, prompt, ring.devices())?;
                    let act = Bytes::new(
                        batch * prompt * model.d_model() * model.dtype().size_bytes(),
                    );
                    Ok(self.tp_layer(ring, &shard, act)?.repeated(layers))
                }
            }
        })
    }

    /// Cost of one chunked-prefill pass: `batch` requests each ingest
    /// `chunk` prompt tokens attending to `past` already-cached tokens.
    /// Zero for models without a prefill phase.
    ///
    /// # Errors
    ///
    /// Chunked prefill is not yet shardable — returns an error on a
    /// tensor-parallel ring (the engine rejects that combination up
    /// front).
    pub fn prefill_chunk(&self, batch: u64, chunk: u64, past: u64) -> Result<SegmentCost> {
        let ServingModel::Llm(model) = self.model else {
            return Ok(SegmentCost::ZERO);
        };
        if self.ring.is_some() {
            return Err(cimtpu_units::Error::invalid_config(
                "chunked prefill is not supported on a tensor-parallel ring",
            ));
        }
        self.memoized((CHUNK, batch, chunk, past), || {
            let layers = model.layers() as f64;
            Ok(self
                .price(&model.prefill_chunk_layer(batch, chunk, past)?)?
                .repeated(layers))
        })
    }

    /// Cost of one generation step for `batch` concurrently active
    /// requests: an LLM decode step at context length `ctx`, or one DiT
    /// forward pass (`ctx` is ignored).
    ///
    /// # Errors
    ///
    /// Returns an error if an operator cannot be mapped onto the hardware,
    /// or for a DiT model on a tensor-parallel ring.
    pub fn step(&self, batch: u64, ctx: u64) -> Result<SegmentCost> {
        match self.model {
            ServingModel::Llm(model) => self.memoized((STEP, batch, ctx, 0), || {
                let layers = model.layers() as f64;
                match self.ring {
                    None => Ok(self.price(&model.decode_layer(batch, ctx)?)?.repeated(layers)),
                    Some(ring) => {
                        let shard = tensor_parallel::decode_layer_shard(
                            model,
                            batch,
                            ctx,
                            ring.devices(),
                        )?;
                        let act =
                            Bytes::new(batch * model.d_model() * model.dtype().size_bytes());
                        Ok(self.tp_layer(ring, &shard, act)?.repeated(layers))
                    }
                }
            }),
            ServingModel::Dit { dit, resolution } => self.memoized((STEP, batch, 0, 0), || {
                if self.ring.is_some() {
                    return Err(cimtpu_units::Error::invalid_config(
                        "tensor-parallel serving supports LLM engines only",
                    ));
                }
                self.price(&dit.full_forward(batch, *resolution)?)
            }),
        }
    }

    /// The hosted model.
    pub fn model(&self) -> &ServingModel {
        self.model
    }

    /// Latency of one step without the full cost (convenience for tests).
    #[cfg(test)]
    pub(crate) fn step_latency(&self, batch: u64, ctx: u64) -> Result<cimtpu_units::Seconds> {
        Ok(self.step(batch, ctx)?.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimtpu_core::{Simulator, TpuConfig};
    use cimtpu_models::presets;
    use cimtpu_units::Seconds;

    fn tiny_llm() -> ServingModel {
        ServingModel::Llm(
            TransformerConfig::new("tiny", 2, 4, 256, 1024).expect("valid geometry"),
        )
    }

    #[test]
    fn llm_phase_costs_scale_by_layers() {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let model = tiny_llm();
        let pricer = PhasePricer::single(&model, &sim);
        let ServingModel::Llm(cfg) = &model else { unreachable!() };

        let per_layer = sim.run(&cfg.decode_layer(2, 64).unwrap()).unwrap().total_latency();
        let step = pricer.step_latency(2, 64).unwrap();
        assert_eq!(step, per_layer * cfg.layers() as f64);

        // Memoized: second query returns the identical cost.
        assert_eq!(pricer.step(2, 64).unwrap().latency, step);
    }

    #[test]
    fn dit_steps_ignore_context_and_skip_prefill() {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let model = ServingModel::Dit { dit: presets::dit_b_2(), resolution: 256 };
        let pricer = PhasePricer::single(&model, &sim);
        assert!(!model.has_prefill());
        assert_eq!(pricer.prefill(4, 128).unwrap(), SegmentCost::ZERO);
        assert_eq!(
            pricer.step(2, 17).unwrap(),
            pricer.step(2, 4096).unwrap(),
            "DiT step cost is context-independent"
        );
    }

    #[test]
    fn chunk_pricing_matches_plain_prefill_at_zero_past() {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let model = tiny_llm();
        let pricer = PhasePricer::single(&model, &sim);
        // Same workload, so bit-identical cost.
        assert_eq!(
            pricer.prefill_chunk(2, 64, 0).unwrap(),
            pricer.prefill(2, 64).unwrap()
        );
        // Later chunks attend to the cached context, so they cost more
        // than a fresh chunk of the same size.
        let late = pricer.prefill_chunk(2, 64, 448).unwrap();
        assert!(late.latency > pricer.prefill_chunk(2, 64, 0).unwrap().latency);
    }

    #[test]
    fn chunk_pricing_rejects_tensor_parallel() {
        let model = ServingModel::Llm(presets::gpt3_30b());
        let ring = MultiTpu::new(TpuConfig::tpuv4i(), 4).unwrap();
        let tp = PhasePricer::tensor_parallel(&model, &ring);
        assert!(tp.prefill_chunk(2, 64, 0).is_err());
    }

    #[test]
    fn tensor_parallel_step_is_faster_but_costs_comm() {
        let model = ServingModel::Llm(presets::gpt3_30b());
        let single_sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let single = PhasePricer::single(&model, &single_sim);

        let ring = MultiTpu::new(TpuConfig::tpuv4i(), 4).unwrap();
        let tp = PhasePricer::tensor_parallel(&model, &ring);

        let t1 = single.step(8, 1280).unwrap();
        let t4 = tp.step(8, 1280).unwrap();
        assert!(t4.latency < t1.latency, "tp4 {} vs tp1 {}", t4.latency, t1.latency);
        // Matches the cimtpu-multi tensor-parallel model exactly.
        let reference = ring
            .llm_tensor_parallel_decode_layer(&presets::gpt3_30b(), 8, 1280)
            .unwrap();
        let per_layer = Seconds::new(t4.latency.get() / presets::gpt3_30b().layers() as f64);
        let rel = (per_layer.get() - reference.get()).abs() / reference.get();
        assert!(rel < 1e-9, "rel err {rel:e}");
    }
}
