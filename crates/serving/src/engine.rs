//! The event-driven serving engine: arrivals → batches → phase segments,
//! scheduled against both compute (the pricer) and memory (the paged
//! KV-cache allocator).

use std::collections::{HashMap, VecDeque};

use cimtpu_core::{Simulator, TpuConfig};
use cimtpu_kv::{KvFootprint, PagedKvAllocator};
use cimtpu_multi::MultiTpu;
use cimtpu_units::{Error, Joules, Result, Seconds};

use crate::memory::MemoryConfig;
use crate::metrics::{Completion, MemoryStats, ServingReport};
use crate::policy::BatchPolicy;
use crate::pricer::{Pricer, ServingModel};
use crate::request::{Request, TrafficSpec};

/// How simulated chips cooperate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// `chips` independent replicas share one request queue; each batch
    /// runs on the earliest-free replica.
    Replicated {
        /// Number of replica chips.
        chips: u64,
    },
    /// `chips` form one tensor-parallel ring (Megatron-style sharding via
    /// `cimtpu-multi`); the ring serves batches as a single logical chip.
    TensorParallel {
        /// Number of ring devices.
        chips: u64,
    },
}

impl Parallelism {
    /// Physical chips involved.
    pub fn chips(&self) -> u64 {
        match *self {
            Parallelism::Replicated { chips } | Parallelism::TensorParallel { chips } => chips,
        }
    }

    /// Independent schedulable executors (1 for a tensor-parallel ring).
    fn executors(&self) -> usize {
        match *self {
            Parallelism::Replicated { chips } => chips as usize,
            Parallelism::TensorParallel { .. } => 1,
        }
    }
}

/// A complete serving-simulation configuration.
#[derive(Debug, Clone)]
pub struct ServingEngine {
    chip: TpuConfig,
    model: ServingModel,
    parallelism: Parallelism,
    policy: BatchPolicy,
    memory: MemoryConfig,
}

/// Everything a serving run produced: the aggregate report plus the
/// per-request completion records it was computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRun {
    /// Aggregate throughput / latency / energy / memory metrics.
    pub report: ServingReport,
    /// Per-request lifecycle records, in request-id order.
    pub completions: Vec<Completion>,
}

impl ServingEngine {
    /// Creates an engine serving `model` on `chip` hardware with
    /// unlimited KV capacity (see [`ServingEngine::with_memory`]).
    ///
    /// # Errors
    ///
    /// Returns an error for zero chips or (checked at run time) a DiT
    /// model under tensor parallelism.
    pub fn new(
        chip: TpuConfig,
        model: ServingModel,
        parallelism: Parallelism,
        policy: BatchPolicy,
    ) -> Result<Self> {
        if parallelism.chips() == 0 {
            return Err(Error::invalid_config("serving needs at least one chip"));
        }
        Ok(ServingEngine {
            chip,
            model,
            parallelism,
            policy,
            memory: MemoryConfig::unlimited(),
        })
    }

    /// Replaces the memory configuration (KV budget / paging / chunked
    /// prefill). With [`MemoryConfig::unlimited`] the engine reproduces
    /// the memory-oblivious scheduler bit-exactly.
    #[must_use]
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// The hosted model.
    pub fn model(&self) -> &ServingModel {
        &self.model
    }

    /// The batching policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// The memory configuration.
    pub fn memory(&self) -> MemoryConfig {
        self.memory
    }

    /// Per-executor KV footprint of the hosted model (sharded across a
    /// tensor-parallel ring).
    fn footprint(&self) -> Result<KvFootprint> {
        match (&self.model, self.parallelism) {
            (ServingModel::Llm(m), Parallelism::TensorParallel { chips }) => {
                KvFootprint::sharded(m, chips)
            }
            (ServingModel::Llm(m), Parallelism::Replicated { .. }) => Ok(KvFootprint::of(m)),
            (ServingModel::Dit { .. }, _) => Ok(KvFootprint::none()),
        }
    }

    /// Builds one allocator per executor from the configured budget.
    fn allocators(&self, executors: usize) -> Result<Vec<PagedKvAllocator>> {
        let footprint = self.footprint()?;
        let budget = self.memory.budget.resolve(self.chip.hbm_capacity(), &footprint);
        (0..executors)
            .map(|_| PagedKvAllocator::from_budget(budget, &footprint, self.memory.block_tokens))
            .collect()
    }

    /// Simulates `traffic` to completion and reports request-level
    /// metrics. Deterministic: identical inputs give identical reports.
    ///
    /// When `CIMTPU_CACHE_DIR` is set, the underlying simulator loads its
    /// mapping cache from disk before the run and persists it afterwards,
    /// so repeated serving runs (and sweeps) skip the map-space searches.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty traffic spec, an unmappable
    /// operator, chunked prefill on a tensor-parallel ring, or a KV
    /// budget too small to hold even a single request.
    pub fn run(&self, label: &str, traffic: &TrafficSpec) -> Result<ServingRun> {
        traffic.prompt.validate()?;
        traffic.steps.validate()?;
        self.memory.validate()?;
        if self.memory.chunk_tokens.is_some()
            && matches!(self.parallelism, Parallelism::TensorParallel { .. })
        {
            return Err(Error::invalid_config(
                "chunked prefill is not supported on a tensor-parallel ring",
            ));
        }
        let arrivals = traffic.generate();
        if arrivals.is_empty() {
            return Err(Error::invalid_config("traffic spec generates no requests"));
        }
        match self.parallelism {
            Parallelism::Replicated { .. } => {
                let sim = Simulator::new(self.chip.clone())?;
                let cx = sim.execution_context();
                let pricer = Pricer::single(&self.model, &cx);
                let run = self.simulate(label, &arrivals, &pricer)?;
                let _ = sim.persist_cache(); // best effort; cold is correct
                Ok(run)
            }
            Parallelism::TensorParallel { chips } => {
                let ring = MultiTpu::new(self.chip.clone(), chips)?;
                let cx = ring.simulator().execution_context();
                let pricer = Pricer::tensor_parallel(&self.model, &cx, &ring);
                let run = self.simulate(label, &arrivals, &pricer)?;
                let _ = ring.simulator().persist_cache();
                Ok(run)
            }
        }
    }

    fn simulate(&self, label: &str, arrivals: &[Request], pricer: &Pricer<'_>) -> Result<ServingRun> {
        let executors = self.parallelism.executors();
        let mut energy = Joules::ZERO;
        let (mut completions, memory) = match self.policy {
            BatchPolicy::Static { .. } | BatchPolicy::Dynamic { .. } => {
                self.run_to_completion(arrivals, pricer, executors, &mut energy)?
            }
            BatchPolicy::Continuous { max_batch } => {
                self.run_continuous(arrivals, pricer, executors, max_batch.max(1), &mut energy)?
            }
        };
        completions.sort_by_key(|c| c.id);
        let report = ServingReport::from_completions(
            label,
            self.policy.name(),
            self.parallelism.chips(),
            &completions,
            energy,
            memory,
        );
        Ok(ServingRun { report, completions })
    }

    /// Static / dynamic batching: form a batch from the queue head, run
    /// it to completion on the earliest-free executor. Run-to-completion
    /// batches never grow past their admission footprint, so admission
    /// control reserves the worst case (prompt + all generated tokens)
    /// up front and preemption never triggers; a batch that the policy
    /// would form but KV cannot hold shrinks until it fits.
    fn run_to_completion(
        &self,
        arrivals: &[Request],
        pricer: &Pricer<'_>,
        executors: usize,
        energy: &mut Joules,
    ) -> Result<(Vec<Completion>, MemoryStats)> {
        let mut allocs = self.allocators(executors)?;
        let mut free_at = vec![Seconds::ZERO; executors];
        let mut completions = Vec::with_capacity(arrivals.len());
        let mut queue_full = Seconds::ZERO;
        // First time each request was turned away by KV admission (it may
        // still launch promptly on another executor — only the deferral
        // actually experienced is charged, at launch).
        let mut kv_deferred_at: HashMap<u64, Seconds> = HashMap::new();
        let mut next = 0;
        while next < arrivals.len() {
            let chip = earliest(&free_at);
            let (policy_take, policy_start) = self.form_batch(&arrivals[next..], free_at[chip]);
            // Admission control: shrink the batch until its worst-case
            // footprint fits the (empty) allocator.
            let alloc = &mut allocs[chip];
            let take = kv_admissible_prefix(alloc, &arrivals[next..next + policy_take])?;
            let start = if take == policy_take {
                policy_start
            } else {
                free_at[chip].max(arrivals[next + take - 1].arrival())
            };
            for r in &arrivals[next + take..next + policy_take] {
                kv_deferred_at.entry(r.id).or_insert(start);
            }
            let members = &arrivals[next..next + take];
            for r in members {
                if let Some(since) = kv_deferred_at.remove(&r.id) {
                    // Ready since `since` (or its arrival, if later), held
                    // back by KV until this launch.
                    queue_full += (start - since.max(r.arrival())).max(Seconds::ZERO);
                }
            }
            free_at[chip] = self.run_batch(members, start, pricer, alloc, energy, &mut completions)?;
            next += take;
        }
        let memory = MemoryStats {
            preemptions: 0,
            queue_full_s: queue_full.get(),
            kv_hwm_frac: allocs.iter().map(PagedKvAllocator::high_water_frac).fold(0.0, f64::max),
        };
        Ok((completions, memory))
    }

    /// Batch formation at the queue head once an executor frees at `free`.
    /// Returns how many requests launch together and when.
    fn form_batch(&self, queue: &[Request], free: Seconds) -> (usize, Seconds) {
        match self.policy {
            BatchPolicy::Static { batch } => {
                // Wait for a full batch (the stream tail may be smaller).
                let take = (batch.max(1) as usize).min(queue.len());
                let start = free.max(queue[take - 1].arrival());
                (take, start)
            }
            BatchPolicy::Dynamic { max_batch, max_wait_ms } => {
                // Launch when `max_batch` have queued or the oldest waiter
                // has waited `max_wait_ms`, whichever happens first.
                let t0 = free.max(queue[0].arrival());
                let deadline = t0.max(queue[0].arrival() + Seconds::from_millis(max_wait_ms));
                let take = queue
                    .iter()
                    .take(max_batch.max(1) as usize)
                    .take_while(|r| r.arrival() <= deadline)
                    .count();
                let start = t0.max(queue[take - 1].arrival());
                (take, start)
            }
            BatchPolicy::Continuous { .. } => unreachable!("continuous has its own loop"),
        }
    }

    /// Runs one formed batch to completion: grouped prefill (prompt padded
    /// to the longest member, optionally split into chunks), then one step
    /// per generated token. Static batching pads — finished requests hold
    /// their slot; dynamic shrinks the step batch as requests finish. KV
    /// blocks grow with each generated token and release when the batch
    /// retires.
    fn run_batch(
        &self,
        members: &[Request],
        start: Seconds,
        pricer: &Pricer<'_>,
        alloc: &mut PagedKvAllocator,
        energy: &mut Joules,
        completions: &mut Vec<Completion>,
    ) -> Result<Seconds> {
        let b = members.len() as u64;
        let max_prompt = members.iter().map(|r| r.prompt_len).max().expect("non-empty");
        let max_steps = members.iter().map(|r| r.steps).max().expect("non-empty");
        let pads = self.policy.pads_to_batch_end();

        // Prefill KV lands as the prompt is ingested.
        for r in members {
            let ok = alloc.try_grow(r.id, r.prompt_len);
            debug_assert!(ok, "admission reserved the worst case");
        }
        let mut t = start;
        let mut first_token = vec![Seconds::ZERO; members.len()];
        if self.model.has_prefill() {
            match self.memory.chunk_tokens {
                None => {
                    let prefill = pricer.prefill(b, max_prompt)?;
                    t += prefill.latency;
                    *energy += prefill.total_energy();
                }
                Some(chunk) => {
                    let mut past = 0;
                    while past < max_prompt {
                        let c = chunk.min(max_prompt - past);
                        let cost = pricer.prefill_chunk(b, c, past)?;
                        t += cost.latency;
                        *energy += cost.total_energy();
                        past += c;
                    }
                }
            }
            first_token.fill(t);
        }
        let mut finish = vec![Seconds::ZERO; members.len()];
        for s in 0..max_steps {
            let active = if pads {
                b
            } else {
                members.iter().filter(|r| r.steps > s).count() as u64
            };
            for r in members.iter().filter(|r| r.steps > s) {
                let ok = alloc.try_grow(r.id, r.prompt_len + s + 1);
                debug_assert!(ok, "admission reserved the worst case");
            }
            let step = pricer.step(active, max_prompt + s + 1)?;
            t += step.latency;
            *energy += step.total_energy();
            if s == 0 && !self.model.has_prefill() {
                first_token.fill(t);
            }
            for (i, r) in members.iter().enumerate() {
                if r.steps == s + 1 {
                    finish[i] = t;
                }
            }
        }
        for (i, r) in members.iter().enumerate() {
            alloc.release(r.id);
            completions.push(Completion {
                id: r.id,
                arrival: r.arrival(),
                first_token: first_token[i],
                // Padded batches release results when the batch completes.
                finish: if pads { t } else { finish[i] },
                steps: r.steps,
            });
        }
        Ok(t)
    }

    /// Continuous batching: executors admit and retire requests between
    /// individual generation steps. Admission reserves a request's prompt
    /// footprint in paged KV blocks (arrivals queue while none are free);
    /// each decode step grows every running request by one token, evicting
    /// the youngest running request when blocks run out
    /// (recompute-on-resume); chunked prefill interleaves prompt chunks
    /// with decode steps of already-running requests.
    fn run_continuous(
        &self,
        arrivals: &[Request],
        pricer: &Pricer<'_>,
        executors: usize,
        max_batch: u64,
        energy: &mut Joules,
    ) -> Result<(Vec<Completion>, MemoryStats)> {
        /// One resident request: `done` generated tokens survive
        /// preemption; `prefilled` / `target` track prompt (re)computation
        /// in the current residency.
        struct Active {
            idx: usize,
            done: u64,
            prefilled: u64,
            target: u64,
        }
        struct Chip {
            t: Seconds,
            active: Vec<Active>,
            /// Preempted requests awaiting re-admission (FIFO, ahead of
            /// new arrivals): request index + tokens generated so far.
            resume: VecDeque<(usize, u64)>,
            alloc: PagedKvAllocator,
            queue_full: Seconds,
            preemptions: u64,
        }
        let mut allocs = self.allocators(executors)?;
        let mut chips: Vec<Chip> = allocs
            .drain(..)
            .map(|alloc| Chip {
                t: Seconds::ZERO,
                active: Vec::new(),
                resume: VecDeque::new(),
                alloc,
                queue_full: Seconds::ZERO,
                preemptions: 0,
            })
            .collect();
        let mut next = 0;
        let mut first_token = vec![Seconds::ZERO; arrivals.len()];
        let mut ttft_set = vec![false; arrivals.len()];
        let mut completions = Vec::with_capacity(arrivals.len());
        let has_prefill = self.model.has_prefill();
        let chunking = self.memory.chunk_tokens;

        loop {
            // Next scheduling point: a chip with resident work steps now;
            // an idle chip waits for the next arrival.
            let mut pick: Option<(usize, Seconds)> = None;
            for (i, chip) in chips.iter().enumerate() {
                let candidate = if !chip.active.is_empty() || !chip.resume.is_empty() {
                    chip.t
                } else if next < arrivals.len() {
                    chip.t.max(arrivals[next].arrival())
                } else {
                    continue;
                };
                if pick.is_none_or(|(_, best)| candidate < best) {
                    pick = Some((i, candidate));
                }
            }
            let Some((ci, t)) = pick else { break };
            let chip = &mut chips[ci];
            chip.t = t;
            let round_start = chip.t;

            // Admit into free slots, KV permitting: preempted requests
            // first (their whole recomputed context must fit), then queued
            // arrivals (their prompt must fit). Head-of-line blocking on
            // KV is what the queue-full metric measures.
            let mut admitted: Vec<(usize, u64, bool)> = Vec::new(); // (idx, done, resumed)
            let mut kv_blocked = false;
            while chip.active.len() + admitted.len() < max_batch as usize {
                if let Some(&(idx, done)) = chip.resume.front() {
                    if chip.alloc.try_grow(arrivals[idx].id, arrivals[idx].prompt_len + done) {
                        admitted.push((idx, done, true));
                        chip.resume.pop_front();
                    } else {
                        kv_blocked = true;
                        break;
                    }
                } else if next < arrivals.len() && arrivals[next].arrival() <= chip.t {
                    if chip.alloc.try_grow(arrivals[next].id, arrivals[next].prompt_len) {
                        admitted.push((next, 0, false));
                        next += 1;
                    } else {
                        kv_blocked = true;
                        break;
                    }
                } else {
                    break;
                }
            }
            if kv_blocked && chip.active.is_empty() && admitted.is_empty() {
                // Nothing resident to retire or preempt: the head request
                // can never fit.
                return Err(Error::invalid_config(format!(
                    "KV budget too small: a single request needs more than the {} block(s) \
                     of {} tokens available",
                    chip.alloc.capacity_blocks().unwrap_or(0),
                    chip.alloc.block_tokens(),
                )));
            }

            // Prefill the admitted group. Monolithic: one padded prefill
            // now (resumed members recompute their full context). Chunked:
            // members enter mid-prefill and advance below.
            match chunking {
                None => {
                    if !admitted.is_empty() && has_prefill {
                        let padded = admitted
                            .iter()
                            .map(|&(idx, done, _)| arrivals[idx].prompt_len + done)
                            .max()
                            .expect("non-empty");
                        let prefill = pricer.prefill(admitted.len() as u64, padded)?;
                        chip.t += prefill.latency;
                        *energy += prefill.total_energy();
                        for &(idx, _, _) in &admitted {
                            if !ttft_set[idx] {
                                first_token[idx] = chip.t;
                                ttft_set[idx] = true;
                            }
                        }
                    }
                    chip.active.extend(admitted.into_iter().map(|(idx, done, _)| {
                        let target = arrivals[idx].prompt_len + done;
                        Active { idx, done, prefilled: target, target }
                    }));
                }
                Some(chunk) => {
                    chip.active.extend(admitted.into_iter().map(|(idx, done, _)| {
                        let target = arrivals[idx].prompt_len + done;
                        Active {
                            idx,
                            done,
                            // A model with no prefill phase (DiT) has no
                            // prompt to chunk: it enters decode directly,
                            // whatever its nominal prompt length.
                            prefilled: if has_prefill { 0 } else { target },
                            target,
                        }
                    }));
                    // One prefill chunk for everything still ingesting its
                    // prompt, padded to the group's longest chunk/context.
                    let prefilling: Vec<usize> = (0..chip.active.len())
                        .filter(|&p| chip.active[p].prefilled < chip.active[p].target)
                        .collect();
                    if has_prefill && !prefilling.is_empty() {
                        let c = prefilling
                            .iter()
                            .map(|&p| (chip.active[p].target - chip.active[p].prefilled).min(chunk))
                            .max()
                            .expect("non-empty");
                        let past = prefilling
                            .iter()
                            .map(|&p| chip.active[p].prefilled)
                            .max()
                            .expect("non-empty");
                        let cost = pricer.prefill_chunk(prefilling.len() as u64, c, past)?;
                        chip.t += cost.latency;
                        *energy += cost.total_energy();
                        let now = chip.t;
                        for p in prefilling {
                            let a = &mut chip.active[p];
                            a.prefilled = (a.prefilled + chunk).min(a.target);
                            if a.prefilled == a.target && !ttft_set[a.idx] {
                                first_token[a.idx] = now;
                                ttft_set[a.idx] = true;
                            }
                        }
                    }
                }
            }

            // One generation step for every request past its prefill. Each
            // needs one more token of KV; when blocks run out, evict the
            // youngest resident request (recompute-on-resume) until the
            // rest fit.
            loop {
                let decoders: Vec<usize> = (0..chip.active.len())
                    .filter(|&p| chip.active[p].prefilled >= chip.active[p].target)
                    .collect();
                if decoders.is_empty() {
                    break;
                }
                let fits = decoders.iter().all(|&p| {
                    let a = &chip.active[p];
                    chip.alloc.try_grow(arrivals[a.idx].id, arrivals[a.idx].prompt_len + a.done + 1)
                });
                if !fits {
                    // Youngest = latest arrival (ids are arrival-ordered).
                    let victim_pos = (0..chip.active.len())
                        .max_by_key(|&p| chip.active[p].idx)
                        .expect("non-empty");
                    let victim = chip.active.remove(victim_pos);
                    chip.alloc.release(arrivals[victim.idx].id);
                    chip.resume.push_back((victim.idx, victim.done));
                    chip.preemptions += 1;
                    kv_blocked = true;
                    if chip.active.is_empty() {
                        return Err(Error::invalid_config(
                            "KV budget too small to sustain a single running request",
                        ));
                    }
                    continue;
                }
                let b = decoders.len() as u64;
                let ctx = decoders
                    .iter()
                    .map(|&p| {
                        let a = &chip.active[p];
                        arrivals[a.idx].prompt_len + a.done
                    })
                    .max()
                    .expect("non-empty")
                    + 1;
                let step = pricer.step(b, ctx)?;
                chip.t += step.latency;
                *energy += step.total_energy();
                let now = chip.t;
                for &p in &decoders {
                    let a = &mut chip.active[p];
                    a.done += 1;
                    if a.done == 1 && !has_prefill && !ttft_set[a.idx] {
                        first_token[a.idx] = now;
                        ttft_set[a.idx] = true;
                    }
                }
                let Chip { active, alloc, .. } = chip;
                active.retain(|a| {
                    if a.prefilled >= a.target && a.done >= arrivals[a.idx].steps {
                        alloc.release(arrivals[a.idx].id);
                        completions.push(Completion {
                            id: arrivals[a.idx].id,
                            arrival: arrivals[a.idx].arrival(),
                            first_token: first_token[a.idx],
                            finish: now,
                            steps: arrivals[a.idx].steps,
                        });
                        false
                    } else {
                        true
                    }
                });
                break;
            }
            // A round that held a ready request back on KV charges its
            // duration to the queue-full clock.
            if kv_blocked {
                chip.queue_full += chip.t - round_start;
            }
            debug_assert!(
                chip.t > round_start || !chip.active.is_empty() || !chip.resume.is_empty(),
                "a scheduled round must make progress"
            );
        }
        let mut memory = MemoryStats::NONE;
        for c in &chips {
            memory.absorb(&MemoryStats {
                preemptions: c.preemptions,
                queue_full_s: c.queue_full.get(),
                kv_hwm_frac: c.alloc.high_water_frac(),
            });
        }
        Ok((completions, memory))
    }
}

/// The longest queue prefix whose worst-case KV footprint (prompt + every
/// generated token) fits an empty allocator — run-to-completion admission
/// control.
///
/// # Errors
///
/// Returns an error if even the first request can never fit.
fn kv_admissible_prefix(alloc: &PagedKvAllocator, queue: &[Request]) -> Result<usize> {
    let Some(capacity) = alloc.capacity_blocks() else {
        return Ok(queue.len());
    };
    let mut blocks = 0;
    let mut take = 0;
    for r in queue {
        let need = alloc.blocks_for(r.prompt_len + r.steps);
        if blocks + need > capacity {
            break;
        }
        blocks += need;
        take += 1;
    }
    if take == 0 {
        return Err(Error::invalid_config(format!(
            "KV budget too small: request {} needs {} blocks but capacity is {capacity}",
            queue[0].id,
            alloc.blocks_for(queue[0].prompt_len + queue[0].steps),
        )));
    }
    Ok(take)
}

/// Index of the executor that frees earliest (ties pick the lowest index,
/// keeping the schedule deterministic).
fn earliest(free_at: &[Seconds]) -> usize {
    let mut best = 0;
    for (i, &t) in free_at.iter().enumerate().skip(1) {
        if t < free_at[best] {
            best = i;
        }
    }
    best
}
