//! The event-driven serving engine: arrivals → batches → phase segments.

use cimtpu_core::{Simulator, TpuConfig};
use cimtpu_multi::MultiTpu;
use cimtpu_units::{Error, Joules, Result, Seconds};

use crate::metrics::{Completion, ServingReport};
use crate::policy::BatchPolicy;
use crate::pricer::{Pricer, ServingModel};
use crate::request::{Request, TrafficSpec};

/// How simulated chips cooperate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// `chips` independent replicas share one request queue; each batch
    /// runs on the earliest-free replica.
    Replicated {
        /// Number of replica chips.
        chips: u64,
    },
    /// `chips` form one tensor-parallel ring (Megatron-style sharding via
    /// `cimtpu-multi`); the ring serves batches as a single logical chip.
    TensorParallel {
        /// Number of ring devices.
        chips: u64,
    },
}

impl Parallelism {
    /// Physical chips involved.
    pub fn chips(&self) -> u64 {
        match *self {
            Parallelism::Replicated { chips } | Parallelism::TensorParallel { chips } => chips,
        }
    }

    /// Independent schedulable executors (1 for a tensor-parallel ring).
    fn executors(&self) -> usize {
        match *self {
            Parallelism::Replicated { chips } => chips as usize,
            Parallelism::TensorParallel { .. } => 1,
        }
    }
}

/// A complete serving-simulation configuration.
#[derive(Debug, Clone)]
pub struct ServingEngine {
    chip: TpuConfig,
    model: ServingModel,
    parallelism: Parallelism,
    policy: BatchPolicy,
}

/// Everything a serving run produced: the aggregate report plus the
/// per-request completion records it was computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRun {
    /// Aggregate throughput / latency / energy metrics.
    pub report: ServingReport,
    /// Per-request lifecycle records, in request-id order.
    pub completions: Vec<Completion>,
}

impl ServingEngine {
    /// Creates an engine serving `model` on `chip` hardware.
    ///
    /// # Errors
    ///
    /// Returns an error for zero chips or (checked at run time) a DiT
    /// model under tensor parallelism.
    pub fn new(
        chip: TpuConfig,
        model: ServingModel,
        parallelism: Parallelism,
        policy: BatchPolicy,
    ) -> Result<Self> {
        if parallelism.chips() == 0 {
            return Err(Error::invalid_config("serving needs at least one chip"));
        }
        Ok(ServingEngine { chip, model, parallelism, policy })
    }

    /// The hosted model.
    pub fn model(&self) -> &ServingModel {
        &self.model
    }

    /// The batching policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Simulates `traffic` to completion and reports request-level
    /// metrics. Deterministic: identical inputs give identical reports.
    ///
    /// When `CIMTPU_CACHE_DIR` is set, the underlying simulator loads its
    /// mapping cache from disk before the run and persists it afterwards,
    /// so repeated serving runs (and sweeps) skip the map-space searches.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty traffic spec or an unmappable
    /// operator.
    pub fn run(&self, label: &str, traffic: &TrafficSpec) -> Result<ServingRun> {
        traffic.prompt.validate()?;
        traffic.steps.validate()?;
        let arrivals = traffic.generate();
        if arrivals.is_empty() {
            return Err(Error::invalid_config("traffic spec generates no requests"));
        }
        match self.parallelism {
            Parallelism::Replicated { .. } => {
                let sim = Simulator::new(self.chip.clone())?;
                let cx = sim.execution_context();
                let pricer = Pricer::single(&self.model, &cx);
                let run = self.simulate(label, &arrivals, &pricer)?;
                let _ = sim.persist_cache(); // best effort; cold is correct
                Ok(run)
            }
            Parallelism::TensorParallel { chips } => {
                let ring = MultiTpu::new(self.chip.clone(), chips)?;
                let cx = ring.simulator().execution_context();
                let pricer = Pricer::tensor_parallel(&self.model, &cx, &ring);
                let run = self.simulate(label, &arrivals, &pricer)?;
                let _ = ring.simulator().persist_cache();
                Ok(run)
            }
        }
    }

    fn simulate(&self, label: &str, arrivals: &[Request], pricer: &Pricer<'_>) -> Result<ServingRun> {
        let executors = self.parallelism.executors();
        let mut energy = Joules::ZERO;
        let mut completions = match self.policy {
            BatchPolicy::Static { .. } | BatchPolicy::Dynamic { .. } => {
                self.run_to_completion(arrivals, pricer, executors, &mut energy)?
            }
            BatchPolicy::Continuous { max_batch } => {
                self.run_continuous(arrivals, pricer, executors, max_batch.max(1), &mut energy)?
            }
        };
        completions.sort_by_key(|c| c.id);
        let report = ServingReport::from_completions(
            label,
            self.policy.name(),
            self.parallelism.chips(),
            &completions,
            energy,
        );
        Ok(ServingRun { report, completions })
    }

    /// Static / dynamic batching: form a batch from the queue head, run
    /// it to completion on the earliest-free executor.
    fn run_to_completion(
        &self,
        arrivals: &[Request],
        pricer: &Pricer<'_>,
        executors: usize,
        energy: &mut Joules,
    ) -> Result<Vec<Completion>> {
        let mut free_at = vec![Seconds::ZERO; executors];
        let mut completions = Vec::with_capacity(arrivals.len());
        let mut next = 0;
        while next < arrivals.len() {
            let chip = earliest(&free_at);
            let (take, start) = self.form_batch(&arrivals[next..], free_at[chip]);
            let members = &arrivals[next..next + take];
            free_at[chip] = self.run_batch(members, start, pricer, energy, &mut completions)?;
            next += take;
        }
        Ok(completions)
    }

    /// Batch formation at the queue head once an executor frees at `free`.
    /// Returns how many requests launch together and when.
    fn form_batch(&self, queue: &[Request], free: Seconds) -> (usize, Seconds) {
        match self.policy {
            BatchPolicy::Static { batch } => {
                // Wait for a full batch (the stream tail may be smaller).
                let take = (batch.max(1) as usize).min(queue.len());
                let start = free.max(queue[take - 1].arrival());
                (take, start)
            }
            BatchPolicy::Dynamic { max_batch, max_wait_ms } => {
                // Launch when `max_batch` have queued or the oldest waiter
                // has waited `max_wait_ms`, whichever happens first.
                let t0 = free.max(queue[0].arrival());
                let deadline = t0.max(queue[0].arrival() + Seconds::from_millis(max_wait_ms));
                let take = queue
                    .iter()
                    .take(max_batch.max(1) as usize)
                    .take_while(|r| r.arrival() <= deadline)
                    .count();
                let start = t0.max(queue[take - 1].arrival());
                (take, start)
            }
            BatchPolicy::Continuous { .. } => unreachable!("continuous has its own loop"),
        }
    }

    /// Runs one formed batch to completion: grouped prefill (prompt padded
    /// to the longest member), then one step per generated token. Static
    /// batching pads — finished requests hold their slot; dynamic shrinks
    /// the step batch as requests finish.
    fn run_batch(
        &self,
        members: &[Request],
        start: Seconds,
        pricer: &Pricer<'_>,
        energy: &mut Joules,
        completions: &mut Vec<Completion>,
    ) -> Result<Seconds> {
        let b = members.len() as u64;
        let max_prompt = members.iter().map(|r| r.prompt_len).max().expect("non-empty");
        let max_steps = members.iter().map(|r| r.steps).max().expect("non-empty");
        let pads = self.policy.pads_to_batch_end();

        let mut t = start;
        let mut first_token = vec![Seconds::ZERO; members.len()];
        if self.model.has_prefill() {
            let prefill = pricer.prefill(b, max_prompt)?;
            t += prefill.latency;
            *energy += prefill.total_energy();
            first_token.fill(t);
        }
        let mut finish = vec![Seconds::ZERO; members.len()];
        for s in 0..max_steps {
            let active = if pads {
                b
            } else {
                members.iter().filter(|r| r.steps > s).count() as u64
            };
            let step = pricer.step(active, max_prompt + s + 1)?;
            t += step.latency;
            *energy += step.total_energy();
            if s == 0 && !self.model.has_prefill() {
                first_token.fill(t);
            }
            for (i, r) in members.iter().enumerate() {
                if r.steps == s + 1 {
                    finish[i] = t;
                }
            }
        }
        for (i, r) in members.iter().enumerate() {
            completions.push(Completion {
                id: r.id,
                arrival: r.arrival(),
                first_token: first_token[i],
                // Padded batches release results when the batch completes.
                finish: if pads { t } else { finish[i] },
                steps: r.steps,
            });
        }
        Ok(t)
    }

    /// Continuous batching: executors admit and retire requests between
    /// individual generation steps.
    fn run_continuous(
        &self,
        arrivals: &[Request],
        pricer: &Pricer<'_>,
        executors: usize,
        max_batch: u64,
        energy: &mut Joules,
    ) -> Result<Vec<Completion>> {
        struct Active {
            idx: usize,
            done: u64,
        }
        struct Chip {
            t: Seconds,
            active: Vec<Active>,
        }
        let mut chips: Vec<Chip> = (0..executors)
            .map(|_| Chip { t: Seconds::ZERO, active: Vec::new() })
            .collect();
        let mut next = 0;
        let mut first_token = vec![Seconds::ZERO; arrivals.len()];
        let mut completions = Vec::with_capacity(arrivals.len());

        loop {
            // Next scheduling point: a chip with work steps now; an idle
            // chip waits for the next arrival.
            let mut pick: Option<(usize, Seconds)> = None;
            for (i, chip) in chips.iter().enumerate() {
                let candidate = if !chip.active.is_empty() {
                    chip.t
                } else if next < arrivals.len() {
                    chip.t.max(arrivals[next].arrival())
                } else {
                    continue;
                };
                if pick.is_none_or(|(_, best)| candidate < best) {
                    pick = Some((i, candidate));
                }
            }
            let Some((ci, t)) = pick else { break };
            let chip = &mut chips[ci];
            chip.t = t;

            // Admit queued arrivals into free slots; the newly admitted
            // group prefills together (padded to its longest prompt).
            let mut admitted = Vec::new();
            while next < arrivals.len()
                && chip.active.len() + admitted.len() < max_batch as usize
                && arrivals[next].arrival() <= chip.t
            {
                admitted.push(next);
                next += 1;
            }
            if !admitted.is_empty() && self.model.has_prefill() {
                let prompt = admitted.iter().map(|&i| arrivals[i].prompt_len).max().expect("non-empty");
                let prefill = pricer.prefill(admitted.len() as u64, prompt)?;
                chip.t += prefill.latency;
                *energy += prefill.total_energy();
                for &i in &admitted {
                    first_token[i] = chip.t;
                }
            }
            chip.active.extend(admitted.into_iter().map(|idx| Active { idx, done: 0 }));
            // An idle chip only wakes at an arrival it can admit (its wake
            // time is that arrival and capacity is >= 1), so there is
            // always something active here.
            debug_assert!(!chip.active.is_empty(), "scheduled an idle chip with nothing to admit");

            // One generation step for everything active on this chip.
            let b = chip.active.len() as u64;
            let ctx = chip
                .active
                .iter()
                .map(|a| arrivals[a.idx].prompt_len + a.done)
                .max()
                .expect("non-empty")
                + 1;
            let step = pricer.step(b, ctx)?;
            chip.t += step.latency;
            *energy += step.total_energy();
            let now = chip.t;
            let has_prefill = self.model.has_prefill();
            for a in &mut chip.active {
                a.done += 1;
                if a.done == 1 && !has_prefill {
                    first_token[a.idx] = now;
                }
            }
            chip.active.retain(|a| {
                if a.done >= arrivals[a.idx].steps {
                    completions.push(Completion {
                        id: arrivals[a.idx].id,
                        arrival: arrivals[a.idx].arrival(),
                        first_token: first_token[a.idx],
                        finish: now,
                        steps: arrivals[a.idx].steps,
                    });
                    false
                } else {
                    true
                }
            });
        }
        Ok(completions)
    }
}

/// Index of the executor that frees earliest (ties pick the lowest index,
/// keeping the schedule deterministic).
fn earliest(free_at: &[Seconds]) -> usize {
    let mut best = 0;
    for (i, &t) in free_at.iter().enumerate().skip(1) {
        if t < free_at[best] {
            best = i;
        }
    }
    best
}
