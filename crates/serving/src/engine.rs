//! The serving-engine configuration and its batch run entry point. The
//! actual event-driven scheduler lives in [`crate::step`] as the
//! incremental [`EngineCore`](crate::EngineCore); `run` instantiates one
//! ([`EngineSession`]), feeds it the traffic, and reports.

use cimtpu_core::TpuConfig;
use cimtpu_units::{Error, Result};

use crate::memory::MemoryConfig;
use crate::metrics::{Completion, ServingReport};
use crate::policy::BatchPolicy;
use crate::pricer::ServingModel;
use crate::request::{ArrivalPattern, ArrivalStream, TrafficSpec};
use crate::session::EngineSession;
use crate::step::drive;

/// How simulated chips cooperate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// `chips` independent replicas share one request queue; each batch
    /// runs on the earliest-free replica.
    Replicated {
        /// Number of replica chips.
        chips: u64,
    },
    /// `chips` form one tensor-parallel ring (Megatron-style sharding via
    /// `cimtpu-multi`); the ring serves batches as a single logical chip.
    TensorParallel {
        /// Number of ring devices.
        chips: u64,
    },
}

impl Parallelism {
    /// Physical chips involved.
    pub fn chips(&self) -> u64 {
        match *self {
            Parallelism::Replicated { chips } | Parallelism::TensorParallel { chips } => chips,
        }
    }

    /// Independent schedulable executors (1 for a tensor-parallel ring).
    pub fn executors(&self) -> usize {
        match *self {
            Parallelism::Replicated { chips } => chips as usize,
            Parallelism::TensorParallel { .. } => 1,
        }
    }
}

/// A complete serving-simulation configuration.
#[derive(Debug, Clone)]
pub struct ServingEngine {
    chip: TpuConfig,
    model: ServingModel,
    parallelism: Parallelism,
    policy: BatchPolicy,
    memory: MemoryConfig,
}

/// Everything a serving run produced: the aggregate report plus the
/// per-request completion records it was computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRun {
    /// Aggregate throughput / latency / energy / memory metrics.
    pub report: ServingReport,
    /// Per-request lifecycle records, in request-id order.
    pub completions: Vec<Completion>,
    /// Prefix-sharing counters (all zero when sharing is off — the
    /// [`ServingReport`] JSON shape is unchanged either way, keeping the
    /// committed `BENCH_serving.json` baseline format stable).
    pub prefix: cimtpu_kv::PrefixStats,
}

impl ServingEngine {
    /// Creates an engine serving `model` on `chip` hardware with
    /// unlimited KV capacity (see [`ServingEngine::with_memory`]).
    ///
    /// # Errors
    ///
    /// Returns an error for zero chips or (checked at run time) a DiT
    /// model under tensor parallelism.
    pub fn new(
        chip: TpuConfig,
        model: ServingModel,
        parallelism: Parallelism,
        policy: BatchPolicy,
    ) -> Result<Self> {
        if parallelism.chips() == 0 {
            return Err(Error::invalid_config("serving needs at least one chip"));
        }
        Ok(ServingEngine {
            chip,
            model,
            parallelism,
            policy,
            memory: MemoryConfig::unlimited(),
        })
    }

    /// Replaces the memory configuration (KV budget / paging / chunked
    /// prefill). With [`MemoryConfig::unlimited`] the engine reproduces
    /// the memory-oblivious scheduler bit-exactly.
    #[must_use]
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// The chip configuration.
    pub fn chip(&self) -> &TpuConfig {
        &self.chip
    }

    /// The hosted model.
    pub fn model(&self) -> &ServingModel {
        &self.model
    }

    /// The batching policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// The memory configuration.
    pub fn memory(&self) -> MemoryConfig {
        self.memory
    }

    /// The chip organization.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Simulates `traffic` to completion and reports request-level
    /// metrics. Deterministic: identical inputs give identical reports.
    ///
    /// Open-loop and burst traces are materialized up front; closed-loop
    /// traffic couples each client's next arrival to its previous
    /// completion, so the run interleaves arrival generation with engine
    /// steps through the shared [`drive`](crate::drive) loop.
    ///
    /// When `CIMTPU_CACHE_DIR` is set, the underlying simulator loads its
    /// mapping cache from disk before the run and persists it afterwards,
    /// so repeated serving runs (and sweeps) skip the map-space searches.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid traffic spec, an unmappable
    /// operator, chunked prefill on a tensor-parallel ring, or a KV
    /// budget too small to hold even a single request.
    pub fn run(&self, label: &str, traffic: &TrafficSpec) -> Result<ServingRun> {
        self.run_observed(label, traffic, None)
    }

    /// [`run`](Self::run) with an optional flight recorder: the engine
    /// core emits its request lifecycle on a fresh `"engine"` track and
    /// every delivered completion feeds the recorder's terminal event
    /// and latency histograms. `None` is exactly [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_observed(
        &self,
        label: &str,
        traffic: &TrafficSpec,
        recorder: Option<&cimtpu_obs::SharedRecorder>,
    ) -> Result<ServingRun> {
        traffic.validate()?;
        let session = EngineSession::new(self)?;
        let mut core = session.core()?;
        if let Some(rec) = recorder {
            let track = rec.borrow_mut().track("engine");
            core.attach_trace(cimtpu_obs::TraceHandle::new(std::rc::Rc::clone(rec), track));
        }
        match traffic.arrival {
            ArrivalPattern::ClosedLoop { .. } => {
                let mut stream = ArrivalStream::new(traffic)?;
                drive(std::slice::from_mut(&mut core), &mut stream, |_, _| 0)?;
            }
            _ => {
                // The whole trace is known up front: hand it to the core
                // and drain (scheduling decisions see the full queue,
                // exactly like the classic batch scheduler).
                for request in traffic.generate() {
                    core.push(request);
                }
                core.close();
                while core.next_action().is_some() {
                    core.step()?;
                }
            }
        }
        let run = core.finish(label);
        if let Some(rec) = recorder {
            let mut rec = rec.borrow_mut();
            let track = core.trace_track().expect("recorder attached above");
            for c in &run.completions {
                rec.complete(
                    track,
                    c.id,
                    c.finish.get(),
                    c.latency().as_millis(),
                    c.ttft().as_millis(),
                );
            }
        }
        session.persist_cache(); // best effort; cold is correct
        Ok(run)
    }

    /// Simulates a multi-tenant [`TenantSet`](crate::TenantSet): merges
    /// the per-tenant traffics into one trace, arms weighted-fair
    /// scheduling on the core, and fills the report's per-tenant section
    /// (goodput, SLO attainment, fairness). A single-tenant set produces
    /// a report bit-identical to [`run`](Self::run) on that tenant's
    /// traffic, plus the tenant section.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run), plus invalid tenant sets.
    pub fn run_tenants(&self, label: &str, tenants: &crate::TenantSet) -> Result<ServingRun> {
        self.run_tenants_observed(label, tenants, None)
    }

    /// [`run_tenants`](Self::run_tenants) with an optional flight
    /// recorder; multi-tenant runs tag every request-lifecycle event
    /// with its tenant index.
    ///
    /// # Errors
    ///
    /// As for [`run_tenants`](Self::run_tenants).
    pub fn run_tenants_observed(
        &self,
        label: &str,
        tenants: &crate::TenantSet,
        recorder: Option<&cimtpu_obs::SharedRecorder>,
    ) -> Result<ServingRun> {
        let merged = tenants.merged_spec()?;
        let sched = tenants.sched();
        let session = EngineSession::new(self)?;
        let mut core = session.core()?;
        core.set_tenancy(&sched);
        if let Some(rec) = recorder {
            let track = rec.borrow_mut().track("engine");
            core.attach_trace(cimtpu_obs::TraceHandle::new(std::rc::Rc::clone(rec), track));
        }
        for request in merged.generate() {
            core.push(request);
        }
        core.close();
        while core.next_action().is_some() {
            core.step()?;
        }
        let mut ledger = crate::TenantLedger::new(tenants, &merged);
        if let Some(per_tenant) = core.tenant_preemptions() {
            ledger.absorb_preemptions(per_tenant);
        }
        let mut run = core.finish(label);
        run.report.tenants = Some(ledger.report(&run.completions, run.report.makespan_s));
        if let Some(rec) = recorder {
            let mut rec = rec.borrow_mut();
            let track = core.trace_track().expect("recorder attached above");
            let multi = sched.classes.len() > 1;
            for c in &run.completions {
                rec.complete_for(
                    track,
                    c.id,
                    c.finish.get(),
                    c.latency().as_millis(),
                    c.ttft().as_millis(),
                    multi.then_some(ledger.tenant_of(c.id) as u32),
                );
            }
        }
        session.persist_cache(); // best effort; cold is correct
        Ok(run)
    }
}
