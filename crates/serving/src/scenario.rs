//! Named serving scenarios: the reference workloads the serving binary
//! and CI smoke test run.

use cimtpu_core::TpuConfig;
use cimtpu_models::{presets, TransformerConfig};
use cimtpu_units::{Bytes, Error, Result};

use crate::engine::{Parallelism, ServingEngine, ServingRun};
use crate::memory::MemoryConfig;
use crate::policy::BatchPolicy;
use crate::pricer::ServingModel;
use crate::request::{ArrivalPattern, LenDist, PrefixTraffic, TrafficSpec};
use crate::tenant::{TenantPart, TenantSet};

/// A named, fully specified serving experiment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (CLI argument).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Chip configuration.
    pub chip: TpuConfig,
    /// Hosted model.
    pub model: ServingModel,
    /// Chip organization.
    pub parallelism: Parallelism,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// KV-cache budget / chunked-prefill configuration.
    pub memory: MemoryConfig,
    /// Traffic to offer.
    pub traffic: TrafficSpec,
}

impl Scenario {
    /// Runs the scenario (optionally overriding the traffic seed).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run(&self, seed: Option<u64>) -> Result<ServingRun> {
        let mut traffic = self.traffic.clone();
        if let Some(seed) = seed {
            traffic.seed = seed;
        }
        ServingEngine::new(
            self.chip.clone(),
            self.model.clone(),
            self.parallelism,
            self.policy,
        )?
        .with_memory(self.memory)
        .run(self.name, &traffic)
    }

    /// Runs the scenario with its traffic split across `parts` tenants
    /// ([`TenantSet::overlay`]) under weighted-fair multi-tenant
    /// scheduling. The seed override reseeds every tenant's stream.
    ///
    /// # Errors
    ///
    /// Propagates engine errors and invalid tenant overlays (closed-loop
    /// or prefix base traffic, fewer requests than tenants).
    pub fn run_tenants(&self, seed: Option<u64>, parts: &[TenantPart]) -> Result<ServingRun> {
        let mut traffic = self.traffic.clone();
        if let Some(seed) = seed {
            traffic.seed = seed;
        }
        let tenants = TenantSet::overlay(&traffic, parts)?;
        ServingEngine::new(
            self.chip.clone(),
            self.model.clone(),
            self.parallelism,
            self.policy,
        )?
        .with_memory(self.memory)
        .run_tenants(self.name, &tenants)
    }
}

/// A deliberately tiny Transformer for smoke tests: two layers priced in
/// milliseconds of wall clock.
pub fn tiny_transformer() -> TransformerConfig {
    TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).expect("static geometry is valid")
}

/// The headline scenarios: prefill-heavy LLM traffic under dynamic
/// batching, decode-heavy LLM traffic under continuous batching, a burst
/// of DiT image requests under static batching, and the two
/// memory-subsystem studies — continuous batching against a tight paged
/// KV budget (admission control + preemption), and chunked prefill
/// interleaving long prompts with running decodes.
pub fn headline() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "llm-prefill-heavy",
            description: "long prompts, short answers; dynamic batching on Design A",
            chip: TpuConfig::design_a(),
            model: ServingModel::Llm(presets::gpt3_6_7b()),
            parallelism: Parallelism::Replicated { chips: 1 },
            policy: BatchPolicy::Dynamic { max_batch: 8, max_wait_ms: 40.0 },
            memory: MemoryConfig::unlimited(),
            traffic: TrafficSpec {
                requests: 32,
                arrival: ArrivalPattern::OpenLoop { rate_rps: 8.0 },
                prompt: LenDist::Uniform { lo: 512, hi: 1024 },
                steps: LenDist::Fixed(8),
                prefix: PrefixTraffic::None,
                seed: 0xC1A0,
            },
        },
        Scenario {
            name: "llm-decode-heavy",
            description: "short prompts, long generations; continuous batching on Design A",
            chip: TpuConfig::design_a(),
            model: ServingModel::Llm(presets::gpt3_6_7b()),
            parallelism: Parallelism::Replicated { chips: 1 },
            policy: BatchPolicy::Continuous { max_batch: 16 },
            memory: MemoryConfig::unlimited(),
            traffic: TrafficSpec {
                requests: 40,
                arrival: ArrivalPattern::OpenLoop { rate_rps: 6.0 },
                prompt: LenDist::Fixed(128),
                steps: LenDist::Uniform { lo: 64, hi: 256 },
                prefix: PrefixTraffic::None,
                seed: 0xC1A0,
            },
        },
        Scenario {
            name: "dit-burst",
            description: "a burst of image requests; static batching on Design B",
            chip: TpuConfig::design_b(),
            model: ServingModel::Dit { dit: presets::dit_b_2(), resolution: 256 },
            parallelism: Parallelism::Replicated { chips: 2 },
            policy: BatchPolicy::Static { batch: 4 },
            memory: MemoryConfig::unlimited(),
            traffic: TrafficSpec {
                requests: 16,
                arrival: ArrivalPattern::Burst,
                prompt: LenDist::Fixed(0),
                steps: LenDist::Fixed(20),
                prefix: PrefixTraffic::None,
                seed: 0xC1A0,
            },
        },
        Scenario {
            name: "llm-kv-pressure",
            description: "decode-heavy traffic against a 1 GiB paged KV budget on Design A \
                          (admission control + preemption)",
            chip: TpuConfig::design_a(),
            model: ServingModel::Llm(presets::gpt3_6_7b()),
            parallelism: Parallelism::Replicated { chips: 1 },
            policy: BatchPolicy::Continuous { max_batch: 16 },
            memory: MemoryConfig::unlimited().with_budget_bytes(Bytes::from_gib(1)),
            traffic: TrafficSpec {
                requests: 40,
                arrival: ArrivalPattern::OpenLoop { rate_rps: 6.0 },
                prompt: LenDist::Fixed(128),
                steps: LenDist::Uniform { lo: 64, hi: 256 },
                prefix: PrefixTraffic::None,
                seed: 0xC1A0,
            },
        },
        Scenario {
            name: "llm-chunked-prefill",
            description: "long prompts split into 256-token chunks so running decodes \
                          interleave with prefill on Design A",
            chip: TpuConfig::design_a(),
            model: ServingModel::Llm(presets::gpt3_6_7b()),
            parallelism: Parallelism::Replicated { chips: 1 },
            policy: BatchPolicy::Continuous { max_batch: 8 },
            memory: MemoryConfig::unlimited().with_chunked_prefill(256),
            traffic: TrafficSpec {
                requests: 24,
                arrival: ArrivalPattern::OpenLoop { rate_rps: 4.0 },
                prompt: LenDist::Uniform { lo: 1024, hi: 2048 },
                steps: LenDist::Fixed(32),
                prefix: PrefixTraffic::None,
                seed: 0xC1A0,
            },
        },
        Scenario {
            name: "llm-shared-prefix",
            description: "2 shared 512-token system prompts across 24 requests with \
                          prefix sharing (copy-on-write KV blocks) on Design A",
            chip: TpuConfig::design_a(),
            model: ServingModel::Llm(presets::gpt3_6_7b()),
            parallelism: Parallelism::Replicated { chips: 1 },
            policy: BatchPolicy::Continuous { max_batch: 8 },
            memory: MemoryConfig::unlimited().with_prefix_sharing(),
            traffic: shared_prefix_traffic(),
        },
        Scenario {
            name: "llm-cold-prefix",
            description: "the llm-shared-prefix traffic with sharing disabled — the \
                          matched-hardware control that recomputes every prompt",
            chip: TpuConfig::design_a(),
            model: ServingModel::Llm(presets::gpt3_6_7b()),
            parallelism: Parallelism::Replicated { chips: 1 },
            policy: BatchPolicy::Continuous { max_batch: 8 },
            memory: MemoryConfig::unlimited(),
            traffic: shared_prefix_traffic(),
        },
    ]
}

/// Shared-system-prompt traffic for the shared-vs-cold prefix pair: two
/// 512-token shared heads over medium prompts. Shared and cold run the
/// byte-identical trace; only the engine's sharing flag differs.
fn shared_prefix_traffic() -> TrafficSpec {
    TrafficSpec {
        requests: 24,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 6.0 },
        prompt: LenDist::Uniform { lo: 640, hi: 1024 },
        steps: LenDist::Fixed(32),
        prefix: PrefixTraffic::SharedHead { tokens: 512, groups: 2 },
        seed: 0xC1A0,
    }
}

/// The CI smoke scenario: a tiny model, a handful of requests, seconds of
/// wall clock. Deterministic for a fixed seed.
pub fn smoke() -> Scenario {
    Scenario {
        name: "smoke",
        description: "tiny 2-layer LLM, continuous batching (CI determinism check)",
        chip: TpuConfig::tpuv4i(),
        model: ServingModel::Llm(tiny_transformer()),
        parallelism: Parallelism::Replicated { chips: 1 },
        policy: BatchPolicy::Continuous { max_batch: 4 },
        memory: MemoryConfig::unlimited(),
        traffic: TrafficSpec {
            requests: 6,
            // Arrivals land within a few service times of each other, so
            // the continuous batcher actually batches (and the latency
            // percentiles spread).
            arrival: ArrivalPattern::OpenLoop { rate_rps: 20_000.0 },
            prompt: LenDist::Fixed(32),
            steps: LenDist::Fixed(8),
            prefix: PrefixTraffic::None,
            seed: 7,
        },
    }
}

/// The CI memory-pressure smoke scenario: the tiny model squeezed into a
/// 64 KiB paged KV budget (4 blocks of 16 tokens), so admission control
/// and preemption both fire within milliseconds of wall clock. Must
/// report at least one preemption — CI asserts it.
pub fn smoke_kv() -> Scenario {
    Scenario {
        name: "smoke-kv",
        description: "tiny LLM under a 4-block KV budget (CI preemption determinism check)",
        chip: TpuConfig::tpuv4i(),
        model: ServingModel::Llm(tiny_transformer()),
        parallelism: Parallelism::Replicated { chips: 1 },
        policy: BatchPolicy::Continuous { max_batch: 4 },
        memory: MemoryConfig::unlimited()
            .with_budget_bytes(Bytes::from_kib(64))
            .with_block_tokens(16),
        traffic: TrafficSpec {
            requests: 6,
            arrival: ArrivalPattern::OpenLoop { rate_rps: 20_000.0 },
            prompt: LenDist::Fixed(32),
            steps: LenDist::Fixed(8),
            prefix: PrefixTraffic::None,
            seed: 7,
        },
    }
}

/// The CI prefix-sharing smoke scenario: six tiny requests sharing a
/// 24-token head (deliberately *not* block-aligned, so both the
/// reference-sharing and the copy-on-write paths fire within
/// milliseconds of wall clock). Must report at least one shared-prefix
/// hit — CI asserts it on the `prefix cache` output line.
pub fn smoke_prefix() -> Scenario {
    Scenario {
        name: "smoke-prefix",
        description: "tiny LLM, 24-token shared head, prefix sharing on (CI \
                      shared-prefix determinism check)",
        chip: TpuConfig::tpuv4i(),
        model: ServingModel::Llm(tiny_transformer()),
        parallelism: Parallelism::Replicated { chips: 1 },
        policy: BatchPolicy::Continuous { max_batch: 4 },
        memory: MemoryConfig::unlimited().with_prefix_sharing(),
        traffic: TrafficSpec {
            requests: 6,
            arrival: ArrivalPattern::OpenLoop { rate_rps: 20_000.0 },
            prompt: LenDist::Fixed(32),
            steps: LenDist::Fixed(8),
            prefix: PrefixTraffic::SharedHead { tokens: 24, groups: 1 },
            seed: 7,
        },
    }
}

/// Looks a scenario up by name (the headline set plus the smoke checks).
///
/// # Errors
///
/// Returns [`Error::UnknownPreset`] for unrecognized names.
pub fn by_name(name: &str) -> Result<Scenario> {
    if name == "smoke" {
        return Ok(smoke());
    }
    if name == "smoke-kv" {
        return Ok(smoke_kv());
    }
    if name == "smoke-prefix" {
        return Ok(smoke_prefix());
    }
    headline()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| Error::unknown_preset(name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_covers_all_scenarios() {
        for s in headline() {
            assert_eq!(by_name(s.name).unwrap().name, s.name);
        }
        assert_eq!(by_name("smoke").unwrap().name, "smoke");
        assert_eq!(by_name("smoke-kv").unwrap().name, "smoke-kv");
        assert_eq!(by_name("smoke-prefix").unwrap().name, "smoke-prefix");
        assert!(by_name("nope").is_err());
    }

    #[test]
    fn smoke_prefix_hits_deterministically() {
        let a = smoke_prefix().run(None).unwrap();
        let b = smoke_prefix().run(None).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.prefix, b.prefix);
        assert_eq!(a.report.completed, 6);
        // Five of the six requests re-hit the 24-token head, and the
        // unaligned head tail exercises copy-on-write.
        assert!(a.prefix.hits >= 1, "prefix stats: {}", a.prefix);
        assert!(a.prefix.shared_tokens >= 24, "prefix stats: {}", a.prefix);
        assert!(a.prefix.cow_copies >= 1, "prefix stats: {}", a.prefix);
        // Sharing must actually cut work against the identical sharing-off
        // run: same completions token-for-token, faster end to end.
        let cold = Scenario { memory: MemoryConfig::unlimited(), ..smoke_prefix() }
            .run(None)
            .unwrap();
        assert_eq!(
            a.completions.iter().map(|c| (c.id, c.steps)).collect::<Vec<_>>(),
            cold.completions.iter().map(|c| (c.id, c.steps)).collect::<Vec<_>>(),
        );
        assert!(a.report.makespan_s < cold.report.makespan_s, "{} vs {}", a.report, cold.report);
        assert!(a.report.total_energy_j < cold.report.total_energy_j);
    }

    #[test]
    fn shared_prefix_headline_beats_cold_control() {
        // The headline pair at matched hardware: sharing must lower both
        // TTFT and (prefill) energy while generating the same tokens.
        let shared = by_name("llm-shared-prefix").unwrap().run(None).unwrap();
        let cold = by_name("llm-cold-prefix").unwrap().run(None).unwrap();
        assert_eq!(
            shared.completions.iter().map(|c| (c.id, c.steps)).collect::<Vec<_>>(),
            cold.completions.iter().map(|c| (c.id, c.steps)).collect::<Vec<_>>(),
            "completions must be token-for-token equal"
        );
        assert!(shared.prefix.hits > 0, "prefix stats: {}", shared.prefix);
        assert!(
            shared.report.ttft.mean_ms < cold.report.ttft.mean_ms,
            "shared TTFT {} ms !< cold {} ms",
            shared.report.ttft.mean_ms,
            cold.report.ttft.mean_ms
        );
        assert!(
            shared.report.total_energy_j < cold.report.total_energy_j,
            "shared energy {} J !< cold {} J (decode work is identical, so the \
             difference is prefill energy)",
            shared.report.total_energy_j,
            cold.report.total_energy_j
        );
        assert_eq!(cold.prefix, cimtpu_kv::PrefixStats::default());
    }

    #[test]
    fn smoke_scenario_is_deterministic() {
        let a = smoke().run(None).unwrap();
        let b = smoke().run(None).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.report.completed, 6);
        // Unlimited memory: no memory events.
        assert_eq!(a.report.preemptions, 0);
        assert_eq!(a.report.queue_full_s, 0.0);
        // A different seed changes the trace (arrival jitter), hence the
        // percentiles.
        let c = smoke().run(Some(99)).unwrap();
        assert_ne!(a.report, c.report);
    }

    #[test]
    fn smoke_kv_preempts_deterministically() {
        let a = smoke_kv().run(None).unwrap();
        let b = smoke_kv().run(None).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.completions, b.completions);
        // Every request still completes, at the cost of evictions and
        // queueing.
        assert_eq!(a.report.completed, 6);
        assert!(a.report.preemptions >= 1, "report: {}", a.report);
        assert!(a.report.queue_full_s > 0.0, "report: {}", a.report);
        assert!(a.report.kv_hwm_frac > 0.5, "report: {}", a.report);
        // The pressure run is strictly slower end to end than unlimited.
        let unlimited = smoke().run(None).unwrap();
        assert!(a.report.makespan_s > unlimited.report.makespan_s);
    }
}
