//! Shared command-line handling for the simulation binaries
//! (`serve_sim`, `cluster_sim`): both take the same flag set — scenario
//! selection, seed, worker count, JSON output, the `--kv-budget`
//! override, and the closed-loop `--clients` / `--think-ms` conversion —
//! so the parsing and report emission live here once.

use serde::Serialize;

use crate::{parse_kv_budget, KvBudget, PrefixStats};

/// The flag set shared by the simulation binaries.
#[derive(Debug, Clone)]
pub struct SimFlags {
    /// `--scenario NAME|all` (default `all`).
    pub scenario: String,
    /// `--seed N`: traffic-seed override.
    pub seed: Option<u64>,
    /// `--json PATH`: also write reports as pretty JSON (`-` = stdout).
    pub json: Option<String>,
    /// `--kv-budget BUDGET`: KV-budget override
    /// (see [`parse_kv_budget`]).
    pub kv_budget: Option<KvBudget>,
    /// `--clients N`: convert traffic to closed loop with `N` clients.
    pub clients: Option<u64>,
    /// `--think-ms MS`: closed-loop think time (default 10 ms).
    pub think_ms: f64,
    /// `--fault-seed N`: fault-plan seed override (fleet binaries only;
    /// a single engine has no fault plan).
    pub fault_seed: Option<u64>,
    /// `--faults SPEC`: comma-separated fault events, passed through raw
    /// — `cimtpu_cluster::parse_faults` owns the grammar and this crate
    /// cannot depend on it.
    pub faults: Option<String>,
    /// `--autoscale SPEC`: autoscale-policy override, passed through raw
    /// — `cimtpu_autoscale::parse_autoscale` owns the grammar (fleet
    /// binaries only).
    pub autoscale: Option<String>,
    /// `--perf-json PATH`: also write wall-clock driver-throughput
    /// records (fleet binaries only). Wall times are machine-dependent,
    /// so they go to a sidecar file, never into the byte-diffed
    /// `--json` baselines.
    pub perf_json: Option<String>,
    /// `--trace PATH`: attach the flight recorder and write a Chrome
    /// trace-event JSON file per scenario (Perfetto-loadable). With
    /// several scenarios selected, the scenario name is inserted before
    /// the extension (`out.json` → `out.<scenario>.json`).
    pub trace: Option<String>,
    /// `--trace-filter SPEC`: comma-separated event kinds to keep in the
    /// `--trace` export (e.g. `crash,retry,scale_up`), passed through
    /// raw — `cimtpu_obs::TraceFilter` owns the grammar.
    pub trace_filter: Option<String>,
    /// `--metrics-csv PATH`: attach the flight recorder and write the
    /// downsampled gauge series as CSV (`scenario,series,t_s,value`
    /// rows, all scenarios in one file).
    pub metrics_csv: Option<String>,
    /// `--summary`: print a one-screen per-scenario summary table
    /// (goodput, availability, scaling actions, latency percentiles)
    /// instead of the full per-replica reports.
    pub summary: bool,
    /// `--tenants SPEC`: split each scenario's traffic across SLO
    /// tenants and schedule it weighted-fair. Comma-separated
    /// `name=class[:weight[:slo_ms]]` entries, passed through raw —
    /// [`parse_tenants`](crate::parse_tenants) owns the grammar.
    pub tenants: Option<String>,
    /// `--trace-in PATH`: replace each scenario's traffic with the JSONL
    /// request trace at PATH (replayed byte-identically; `--seed` then
    /// has no effect on arrivals).
    pub trace_in: Option<String>,
    /// `--trace-out PATH`: synthesize each selected scenario's traffic
    /// into a JSONL request trace at PATH and exit without simulating
    /// (with several scenarios selected the scenario name is inserted
    /// before the extension, as for `--trace`).
    pub trace_out: Option<String>,
}

impl SimFlags {
    /// Parses `std::env::args`. `binary` names the program and
    /// `budget_scope` phrases what `--kv-budget` overrides (e.g. "the
    /// scenario's" / "every replica's"); `fleet_flags` accepts the
    /// fleet-only `--fault-seed` / `--faults` / `--perf-json` flags
    /// (single-engine binaries reject them as unknown);
    /// `print_scenarios` lists the binary's scenarios under `--help`
    /// (which prints usage and exits).
    ///
    /// `--workers N` is applied on the spot by setting `CIMTPU_WORKERS`
    /// (the `cimtpu_bench::sweep` pool reads it).
    ///
    /// # Errors
    ///
    /// Returns the message to print for an unknown flag or a malformed
    /// value.
    pub fn parse(
        binary: &str,
        budget_scope: &str,
        fleet_flags: bool,
        print_scenarios: impl Fn(),
    ) -> Result<SimFlags, String> {
        let mut flags = SimFlags {
            scenario: "all".to_owned(),
            seed: None,
            json: None,
            kv_budget: None,
            clients: None,
            think_ms: 10.0,
            fault_seed: None,
            faults: None,
            autoscale: None,
            perf_json: None,
            trace: None,
            trace_filter: None,
            metrics_csv: None,
            summary: false,
            tenants: None,
            trace_in: None,
            trace_out: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next().ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--scenario" => flags.scenario = value("--scenario")?,
                "--seed" => {
                    flags.seed = Some(
                        value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?,
                    );
                }
                "--workers" => {
                    let n: usize = value("--workers")?
                        .parse()
                        .map_err(|e| format!("bad --workers: {e}"))?;
                    // The sweep pool reads CIMTPU_WORKERS; the flag
                    // overrides it.
                    std::env::set_var("CIMTPU_WORKERS", n.max(1).to_string());
                }
                "--json" => flags.json = Some(value("--json")?),
                "--kv-budget" => {
                    flags.kv_budget = Some(
                        parse_kv_budget(&value("--kv-budget")?).map_err(|e| e.to_string())?,
                    );
                }
                "--clients" => {
                    flags.clients = Some(
                        value("--clients")?
                            .parse()
                            .map_err(|e| format!("bad --clients: {e}"))?,
                    );
                }
                "--think-ms" => {
                    flags.think_ms = value("--think-ms")?
                        .parse()
                        .map_err(|e| format!("bad --think-ms: {e}"))?;
                }
                "--fault-seed" if fleet_flags => {
                    flags.fault_seed = Some(
                        value("--fault-seed")?
                            .parse()
                            .map_err(|e| format!("bad --fault-seed: {e}"))?,
                    );
                }
                "--faults" if fleet_flags => flags.faults = Some(value("--faults")?),
                "--autoscale" if fleet_flags => {
                    flags.autoscale = Some(value("--autoscale")?);
                }
                "--perf-json" if fleet_flags => {
                    flags.perf_json = Some(value("--perf-json")?);
                }
                "--trace" if fleet_flags => flags.trace = Some(value("--trace")?),
                "--trace-filter" if fleet_flags => {
                    flags.trace_filter = Some(value("--trace-filter")?);
                }
                "--metrics-csv" if fleet_flags => {
                    flags.metrics_csv = Some(value("--metrics-csv")?);
                }
                "--summary" if fleet_flags => flags.summary = true,
                "--tenants" => flags.tenants = Some(value("--tenants")?),
                "--trace-in" => flags.trace_in = Some(value("--trace-in")?),
                "--trace-out" => flags.trace_out = Some(value("--trace-out")?),
                "--help" | "-h" => {
                    let fault_usage = if fleet_flags {
                        " [--fault-seed N] [--faults SPEC] [--autoscale SPEC] \
                         [--perf-json PATH] [--trace PATH] [--trace-filter SPEC] \
                         [--metrics-csv PATH] [--summary]"
                    } else {
                        ""
                    };
                    println!(
                        "usage: {binary} [--scenario NAME|all] [--seed N] [--workers N] \
                         [--json PATH] [--kv-budget BUDGET] [--clients N] \
                         [--think-ms MS] [--tenants SPEC] [--trace-in PATH] \
                         [--trace-out PATH]{fault_usage}"
                    );
                    println!(
                        "  --kv-budget BUDGET   override {budget_scope} KV budget: 'unlimited',"
                    );
                    println!(
                        "                       'hbm', or bytes with KiB/MiB/GiB/TiB suffix \
                         (e.g. 1GiB)"
                    );
                    println!(
                        "  --clients N          convert traffic to closed loop with N clients"
                    );
                    println!("  --think-ms MS        closed-loop think time (default 10)");
                    println!(
                        "  --tenants SPEC       split traffic across SLO tenants and schedule \
                         weighted-fair:"
                    );
                    println!(
                        "                       comma-separated name=class[:weight[:slo_ms]] \
                         (class: interactive,"
                    );
                    println!(
                        "                       standard, or batch; weight defaults to 1), \
                         e.g. 'chat=interactive:3,bulk=batch'"
                    );
                    println!(
                        "  --trace-in PATH      replay the JSONL request trace at PATH as each \
                         scenario's traffic"
                    );
                    println!(
                        "  --trace-out PATH     write each scenario's synthesized traffic as a \
                         JSONL trace and exit"
                    );
                    if fleet_flags {
                        println!(
                            "  --perf-json PATH     also write wall-clock driver-throughput \
                             records"
                        );
                        println!(
                            "                       (machine-dependent; kept out of the \
                             --json baseline)"
                        );
                        println!(
                            "  --fault-seed N       reseed each scenario's fault plan \
                             (chaos draws redraw; explicit events stand)"
                        );
                        println!(
                            "  --faults SPEC        replace each scenario's fault plan: \
                             comma-separated"
                        );
                        println!(
                            "                       'crash@<t>:<replica>[:repair=<t>]', \
                             'straggler@<from>-<until>:<replica>:x<f>',"
                        );
                        println!(
                            "                       'link@<from>-<until>:x<f>[:energy=x<f>]' \
                             (times take an s/ms suffix)"
                        );
                        println!(
                            "  --autoscale SPEC     install an autoscale policy on each \
                             scenario: comma-separated"
                        );
                        println!(
                            "                       'interval=1s', 'provision=2s', \
                             'warmup=500ms', 'idle-w=30', 'conc=4',"
                        );
                        println!(
                            "                       'replicas=LO..HI' (every group), \
                             'group<K>=LO..HI', 'init=N', 'up=0.75',"
                        );
                        println!(
                            "                       'down=0.25', 'up-cd=2s', 'down-cd=5s', \
                             'slo-floor=0.9', 'swap'"
                        );
                        println!(
                            "  --trace PATH         attach the flight recorder and write a \
                             Chrome trace-event"
                        );
                        println!(
                            "                       JSON file per scenario (Perfetto-loadable; \
                             runs sequentially)"
                        );
                        println!(
                            "  --trace-filter SPEC  keep only these comma-separated event \
                             kinds in --trace"
                        );
                        println!(
                            "                       (e.g. 'crash,retry,scale_up')"
                        );
                        println!(
                            "  --metrics-csv PATH   write downsampled gauge series as CSV \
                             (scenario,series,t_s,value)"
                        );
                        println!(
                            "  --summary            one-screen per-scenario table instead of \
                             full reports"
                        );
                    }
                    println!("scenarios:");
                    print_scenarios();
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        Ok(flags)
    }
}

/// Derives the per-scenario output path when several scenarios share one
/// `--trace` / `--trace-out` argument: `out.json` → `out.<scenario>.json`
/// (extensionless paths get the scenario appended).
pub fn per_scenario_path(base: &str, scenario: &str) -> String {
    let p = std::path::Path::new(base);
    match (p.file_stem().and_then(|s| s.to_str()), p.extension().and_then(|e| e.to_str())) {
        (Some(stem), Some(ext)) => p
            .with_file_name(format!("{stem}.{scenario}.{ext}"))
            .to_string_lossy()
            .into_owned(),
        _ => format!("{base}.{scenario}"),
    }
}

/// Implements `--trace-out` for the simulation binaries: synthesizes each
/// named traffic spec ([`synthesize`](crate::synthesize)) and writes it
/// as a JSONL request trace. With several scenarios selected, the
/// scenario name is inserted before the extension
/// ([`per_scenario_path`]). Returns whether anything failed.
pub fn emit_traces(binary: &str, path: &str, traffics: &[(&str, crate::TrafficSpec)]) -> bool {
    let mut failed = false;
    for (name, spec) in traffics {
        let body = match crate::synthesize(spec) {
            Ok(records) => crate::to_jsonl(&records),
            Err(e) => {
                eprintln!("{binary}: {name}: {e}");
                failed = true;
                continue;
            }
        };
        let target = if traffics.len() > 1 {
            per_scenario_path(path, name)
        } else {
            path.to_owned()
        };
        if let Err(e) = std::fs::write(&target, body) {
            eprintln!("{binary}: writing {target}: {e}");
            failed = true;
        }
    }
    failed
}

/// Prints the text reports and, with `--json`, writes them as pretty
/// JSON (`-` replaces the text output with JSON on stdout). Returns
/// whether writing failed.
#[allow(clippy::ptr_arg)] // the vendored serde implements Serialize for Vec, not slices
pub fn emit_reports<R: std::fmt::Display + Serialize>(
    binary: &str,
    reports: &Vec<R>,
    json: Option<&str>,
) -> bool {
    let payload = json.map(|path| {
        (path, serde_json::to_string_pretty(&reports).expect("reports serialize"))
    });
    match payload {
        Some(("-", payload)) => {
            println!("{payload}");
            false
        }
        Some((path, payload)) => {
            let failed = if let Err(e) = std::fs::write(path, payload + "\n") {
                eprintln!("{binary}: writing {path}: {e}");
                true
            } else {
                false
            };
            for report in reports {
                println!("{report}");
            }
            failed
        }
        None => {
            for report in reports {
                println!("{report}");
            }
            false
        }
    }
}

/// Prints one `prefix cache [scenario]  …` counter line per
/// prefix-sharing run, after the text reports. Callers pass only runs
/// that actually looked prefixes up, so sharing-off output is unchanged;
/// skipped entirely when `--json -` replaced the text output on stdout.
/// The CI `smoke-prefix` check greps this exact format — keep the two
/// binaries emitting it through this one function.
pub fn emit_prefix_stats(lines: &[(&str, PrefixStats)], json: Option<&str>) {
    if json == Some("-") {
        return;
    }
    for (name, stats) in lines {
        println!("prefix cache [{name}]  {stats}");
    }
}
