//! Batching policies: how queued requests are grouped onto a chip.

use serde::{Deserialize, Serialize};

/// How the scheduler forms batches from the request queue.
///
/// See the [crate-level documentation](crate) for the full semantics of
/// each policy; in brief:
///
/// - **Static** — wait for exactly `batch` requests (stream tail may be
///   smaller), run the batch to completion with slot padding;
/// - **Dynamic** — take what has queued (bounded by `max_batch` /
///   `max_wait_ms`), run to completion, shrinking as requests finish;
/// - **Continuous** — admit and retire requests between individual decode
///   steps, the vLLM/Orca-style policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// Fixed-size batches, run to completion with padding.
    Static {
        /// Exact batch size to wait for.
        batch: u64,
    },
    /// Arrival-window batches, run to completion without padding.
    Dynamic {
        /// Largest batch the scheduler will form.
        max_batch: u64,
        /// Longest time the oldest queued request waits before the batch
        /// launches anyway, in milliseconds.
        max_wait_ms: f64,
    },
    /// Step-granular continuous batching of decode steps.
    Continuous {
        /// Largest number of concurrently active requests per chip.
        max_batch: u64,
    },
}

impl BatchPolicy {
    /// The policy's short name (used in reports and CLI output).
    pub fn name(&self) -> &'static str {
        match self {
            BatchPolicy::Static { .. } => "static",
            BatchPolicy::Dynamic { .. } => "dynamic",
            BatchPolicy::Continuous { .. } => "continuous",
        }
    }

    /// Upper bound on concurrent requests per chip under this policy.
    pub fn max_concurrency(&self) -> u64 {
        match *self {
            BatchPolicy::Static { batch } => batch.max(1),
            BatchPolicy::Dynamic { max_batch, .. } | BatchPolicy::Continuous { max_batch } => {
                max_batch.max(1)
            }
        }
    }

    /// Whether finished requests keep occupying their slot (padding) until
    /// the whole batch completes.
    pub fn pads_to_batch_end(&self) -> bool {
        matches!(self, BatchPolicy::Static { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_bounds() {
        assert_eq!(BatchPolicy::Static { batch: 8 }.name(), "static");
        assert_eq!(BatchPolicy::Static { batch: 8 }.max_concurrency(), 8);
        assert_eq!(
            BatchPolicy::Dynamic { max_batch: 4, max_wait_ms: 10.0 }.max_concurrency(),
            4
        );
        assert_eq!(BatchPolicy::Continuous { max_batch: 0 }.max_concurrency(), 1);
        assert!(BatchPolicy::Static { batch: 2 }.pads_to_batch_end());
        assert!(!BatchPolicy::Continuous { max_batch: 2 }.pads_to_batch_end());
    }
}
