//! An instantiated serving backend: the simulator (or tensor-parallel
//! ring) a [`ServingEngine`] configuration prices against, owned so that
//! incremental [`EngineCore`]s and [`PhasePricer`]s can borrow it.

use cimtpu_core::Simulator;
use cimtpu_kv::{KvFootprint, PagedKvAllocator};
use cimtpu_multi::MultiTpu;
use cimtpu_units::{Error, Result};

use crate::engine::{Parallelism, ServingEngine};
use crate::memory::MemoryConfig;
use crate::policy::BatchPolicy;
use crate::pricer::{PhasePricer, ServingModel};
use crate::step::EngineCore;

#[derive(Debug)]
enum Backend {
    Single(Simulator),
    Ring(MultiTpu),
}

/// One engine configuration instantiated against real pricing state: the
/// chip simulator (or tensor-parallel ring), the hosted model, and the
/// policy/memory configuration. The session owns what the borrowing
/// front-ends need:
///
/// - [`EngineSession::core`] — an incremental [`EngineCore`] running the
///   full batching engine (what [`ServingEngine::run`] drives, and what a
///   cluster driver interleaves across replicas);
/// - [`EngineSession::pricer`] — a bare [`PhasePricer`] for drivers that
///   schedule phases themselves (the cluster crate's disaggregated
///   prefill/decode pools);
/// - [`EngineSession::allocator`] / [`EngineSession::footprint`] — the
///   paged KV allocator and per-executor footprint derived from the
///   configured budget.
#[derive(Debug)]
pub struct EngineSession {
    model: ServingModel,
    policy: BatchPolicy,
    memory: MemoryConfig,
    parallelism: Parallelism,
    backend: Backend,
}

impl EngineSession {
    /// Instantiates `engine`'s backend (builds the simulator or ring; when
    /// `CIMTPU_CACHE_DIR` is set the underlying mapping cache loads from
    /// disk).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid chip or memory configuration, or
    /// chunked prefill on a tensor-parallel ring.
    pub fn new(engine: &ServingEngine) -> Result<Self> {
        let memory = engine.memory();
        memory.validate()?;
        let parallelism = engine.parallelism();
        if memory.chunk_tokens.is_some()
            && matches!(parallelism, Parallelism::TensorParallel { .. })
        {
            return Err(Error::invalid_config(
                "chunked prefill is not supported on a tensor-parallel ring",
            ));
        }
        if memory.prefix_sharing && matches!(parallelism, Parallelism::TensorParallel { .. }) {
            return Err(Error::invalid_config(
                "prefix sharing is not supported on a tensor-parallel ring \
                 (shared-tail pricing needs chunked prefill)",
            ));
        }
        let backend = match parallelism {
            Parallelism::Replicated { .. } => {
                Backend::Single(Simulator::new(engine.chip().clone())?)
            }
            Parallelism::TensorParallel { chips } => {
                Backend::Ring(MultiTpu::new(engine.chip().clone(), chips)?)
            }
        };
        Ok(EngineSession {
            model: engine.model().clone(),
            policy: engine.policy(),
            memory,
            parallelism,
            backend,
        })
    }

    /// The hosted model.
    pub fn model(&self) -> &ServingModel {
        &self.model
    }

    /// The batching policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// The memory configuration.
    pub fn memory(&self) -> MemoryConfig {
        self.memory
    }

    /// The chip organization.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// A fresh phase pricer against this session's backend (fresh memo;
    /// the per-operator `MappingCache` underneath is shared and warm).
    pub fn pricer(&self) -> PhasePricer<'_> {
        match &self.backend {
            Backend::Single(sim) => PhasePricer::single(&self.model, sim),
            Backend::Ring(ring) => PhasePricer::tensor_parallel(&self.model, ring),
        }
    }

    /// A fresh incremental engine core over this session.
    ///
    /// # Errors
    ///
    /// Returns an error if the KV budget cannot be derived (zero-sized
    /// blocks, invalid sharding).
    pub fn core(&self) -> Result<EngineCore<'_>> {
        let executors = self.parallelism.executors();
        let allocs: Vec<PagedKvAllocator> =
            (0..executors).map(|_| self.allocator()).collect::<Result<_>>()?;
        Ok(EngineCore::new(
            self.pricer(),
            self.policy,
            self.memory,
            self.parallelism.chips(),
            allocs,
        ))
    }

    /// Per-executor KV footprint of the hosted model (sharded across a
    /// tensor-parallel ring).
    ///
    /// # Errors
    ///
    /// Returns an error for zero-way sharding (unreachable via public
    /// constructors).
    pub fn footprint(&self) -> Result<KvFootprint> {
        match (&self.model, self.parallelism) {
            (ServingModel::Llm(m), Parallelism::TensorParallel { chips }) => {
                KvFootprint::sharded(m, chips)
            }
            (ServingModel::Llm(m), Parallelism::Replicated { .. }) => Ok(KvFootprint::of(m)),
            (ServingModel::Dit { .. }, _) => Ok(KvFootprint::none()),
        }
    }

    /// One executor's paged KV allocator from the configured budget.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero block size.
    pub fn allocator(&self) -> Result<PagedKvAllocator> {
        let footprint = self.footprint()?;
        let budget = self.memory.budget.resolve(self.hbm_capacity(), &footprint);
        PagedKvAllocator::from_budget(budget, &footprint, self.memory.block_tokens)
    }

    fn hbm_capacity(&self) -> cimtpu_units::Bytes {
        match &self.backend {
            Backend::Single(sim) => sim.config().hbm_capacity(),
            Backend::Ring(ring) => ring.simulator().config().hbm_capacity(),
        }
    }

    /// Persists the backend's mapping cache (best effort, no-op without
    /// `CIMTPU_CACHE_DIR`).
    pub fn persist_cache(&self) {
        let _ = match &self.backend {
            Backend::Single(sim) => sim.persist_cache(),
            Backend::Ring(ring) => ring.simulator().persist_cache(),
        };
    }
}
