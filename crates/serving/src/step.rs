//! The incremental serving engine: the same event-driven scheduler as
//! [`ServingEngine::run`](crate::ServingEngine::run), exposed as a
//! push/step state machine an external driver can interleave with other
//! engines.
//!
//! [`EngineCore`] owns one engine's scheduling state (queue, batching
//! policy, per-executor clocks and KV allocators) and advances one
//! scheduling decision per [`step`](EngineCore::step). A driver feeds it
//! arrivals with [`push`](EngineCore::push) (in arrival order), declares
//! the stream finished with [`close`](EngineCore::close), and asks
//! [`next_action`](EngineCore::next_action) when the engine can next make
//! progress on its own. This is what makes fleet-level simulation
//! possible: the `cimtpu-cluster` crate runs one core per replica and a
//! router decides which core each arrival is pushed into, while
//! closed-loop traffic couples completions back into the arrival stream.
//!
//! Scheduling decisions depend only on the queue contents, the closed
//! flag, and the engine's own clocks — never on *when* the driver happens
//! to push or step — so a core fed incrementally produces bit-identical
//! results to one fed its whole trace up front. The single-engine
//! [`ServingEngine::run`](crate::ServingEngine::run) and the cluster
//! driver both lean on that invariant (and the equivalence tests pin it).

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};

use cimtpu_kv::{PagedKvAllocator, PrefixIndex, PrefixStats};
use cimtpu_obs::{EventKind, TraceHandle};
use cimtpu_units::{Error, Joules, Result, Seconds};

use crate::heap::ActionHeap;

use crate::memory::MemoryConfig;
use crate::metrics::{Completion, MemoryStats, ServingReport};
use crate::policy::BatchPolicy;
use crate::pricer::PhasePricer;
use crate::request::{ArrivalStream, Request};
use crate::tenant::{SloClass, TenantSched};
use crate::ServingRun;

/// One serving engine as an incremental state machine. See
/// [`drive`](crate::drive) for the driver protocol; obtain one from
/// [`EngineSession::core`](crate::EngineSession::core).
#[derive(Debug)]
pub struct EngineCore<'a> {
    pricer: PhasePricer<'a>,
    policy: BatchPolicy,
    memory: MemoryConfig,
    has_prefill: bool,
    chips: u64,
    /// Every request pushed so far, in arrival order; `next` marks the
    /// boundary between scheduled and still-queued requests.
    arrivals: Vec<Request>,
    next: usize,
    closed: bool,
    completions: Vec<Completion>,
    drained: usize,
    energy: Joules,
    busy: Seconds,
    /// Time-to-first-token bookkeeping, index-aligned with `arrivals`
    /// (used by the continuous scheduler; run-to-completion batches track
    /// first tokens locally).
    first_token: Vec<Seconds>,
    ttft_set: Vec<bool>,
    /// Multiplier on priced step latency (a straggler window sets it
    /// above 1.0; energy is unaffected — a slow chip still computes the
    /// same FLOPs).
    slowdown: f64,
    /// Set once by [`crash`](EngineCore::crash); the core is inert after.
    crashed: bool,
    /// Bumped by every state transition (push/close/step/…); stamps the
    /// memoized [`next_action`](EngineCore::next_action) so drivers see a
    /// dirty-flag instead of re-deriving the schedule on every poll.
    epoch: u64,
    /// `(epoch, next_action)` at the last computation; valid while the
    /// epoch still matches.
    cached_action: Cell<Option<(u64, Option<Seconds>)>>,
    /// Flight-recorder handle ([`attach_trace`](Self::attach_trace));
    /// `None` costs one branch per emission site and changes nothing.
    trace: Option<TraceHandle>,
    /// Tenant-aware scheduling state ([`set_tenancy`](Self::set_tenancy));
    /// `None` runs the original single-tenant FIFO scheduler bit-exactly.
    tenancy: Option<TenancyState>,
    /// Class of each completion, index-aligned with `completions`
    /// (completions carry no tenancy; reports and snapshots need it).
    comp_class: Vec<SloClass>,
    state: State,
}

/// Scheduling state for tenant-aware weighted-fair admission.
#[derive(Debug)]
struct TenancyState {
    /// Per-tenant service tier.
    classes: Vec<SloClass>,
    /// Per-tenant fair-share weight (positive, finite).
    weights: Vec<f64>,
    /// Tokens of service charged per tenant (prompt + decode tokens,
    /// charged once at first admission; resumption after preemption is
    /// free — the tenant already paid for the work being redone).
    service: Vec<u64>,
    /// Preemptions absorbed per tenant.
    preempted: Vec<u64>,
    /// Whether each arrival (index-aligned with `arrivals`) has been
    /// admitted; weighted-fair admission may leave earlier arrivals
    /// queued behind later ones, so `next` alone cannot partition the
    /// queue. `next` still marks the first unadmitted index.
    admitted: Vec<bool>,
    /// Count of `true` bits in `admitted`.
    admitted_count: usize,
}

#[derive(Debug)]
enum State {
    /// Static / dynamic batching: batches run to completion.
    Rtc(RtcState),
    /// Continuous batching: requests admitted/retired between steps.
    Cont(ContState),
}

#[derive(Debug)]
struct RtcState {
    allocs: Vec<PagedKvAllocator>,
    /// Per-executor prefix index (`None` when sharing is off).
    prefix: Vec<Option<PrefixIndex>>,
    free_at: Vec<Seconds>,
    /// First time each request was turned away by KV admission (it may
    /// still launch promptly on another executor — only the deferral
    /// actually experienced is charged, at launch).
    kv_deferred_at: HashMap<u64, Seconds>,
    queue_full: Seconds,
}

#[derive(Debug)]
struct ContState {
    chips: Vec<ContChip>,
    max_batch: u64,
}

/// One resident request: `done` generated tokens survive preemption;
/// `prefilled` / `target` track prompt (re)computation in the current
/// residency.
#[derive(Debug)]
struct Active {
    idx: usize,
    done: u64,
    prefilled: u64,
    target: u64,
}

#[derive(Debug)]
struct ContChip {
    t: Seconds,
    active: Vec<Active>,
    /// Preempted requests awaiting re-admission (FIFO, ahead of new
    /// arrivals): request index + tokens generated so far.
    resume: VecDeque<(usize, u64)>,
    alloc: PagedKvAllocator,
    /// Prefix index over this chip's resident prompt blocks (`None` when
    /// sharing is off).
    prefix: Option<PrefixIndex>,
    queue_full: Seconds,
    preemptions: u64,
}

/// A decided run-to-completion launch.
struct RtcLaunch {
    chip: usize,
    take: usize,
    start: Seconds,
}

enum RtcPlan {
    /// Launch a batch now.
    Launch(RtcLaunch),
    /// The decision resolves at `at` unless more arrivals land first
    /// (dynamic batching waiting out its batching window).
    Wait { at: Seconds },
}

impl<'a> EngineCore<'a> {
    pub(crate) fn new(
        pricer: PhasePricer<'a>,
        policy: BatchPolicy,
        memory: MemoryConfig,
        chips: u64,
        allocs: Vec<PagedKvAllocator>,
    ) -> Self {
        let has_prefill = pricer.model().has_prefill();
        // Prefix sharing needs a prefill phase to share; a DiT engine
        // simply never builds an index.
        let sharing = memory.prefix_sharing && has_prefill;
        let index_for = |alloc: &PagedKvAllocator| {
            sharing.then(|| PrefixIndex::new(alloc.block_tokens()))
        };
        let state = match policy {
            BatchPolicy::Static { .. } | BatchPolicy::Dynamic { .. } => {
                let free_at = vec![Seconds::ZERO; allocs.len()];
                let prefix = allocs.iter().map(index_for).collect();
                State::Rtc(RtcState {
                    allocs,
                    prefix,
                    free_at,
                    kv_deferred_at: HashMap::new(),
                    queue_full: Seconds::ZERO,
                })
            }
            BatchPolicy::Continuous { max_batch } => State::Cont(ContState {
                chips: allocs
                    .into_iter()
                    .map(|alloc| ContChip {
                        t: Seconds::ZERO,
                        active: Vec::new(),
                        resume: VecDeque::new(),
                        prefix: index_for(&alloc),
                        alloc,
                        queue_full: Seconds::ZERO,
                        preemptions: 0,
                    })
                    .collect(),
                max_batch: max_batch.max(1),
            }),
        };
        EngineCore {
            pricer,
            policy,
            memory,
            has_prefill,
            chips,
            arrivals: Vec::new(),
            next: 0,
            closed: false,
            completions: Vec::new(),
            drained: 0,
            energy: Joules::ZERO,
            busy: Seconds::ZERO,
            first_token: Vec::new(),
            ttft_set: Vec::new(),
            slowdown: 1.0,
            crashed: false,
            epoch: 0,
            cached_action: Cell::new(None),
            trace: None,
            tenancy: None,
            comp_class: Vec::new(),
            state,
        }
    }

    /// Attaches a flight-recorder handle: from now on the core emits
    /// request-lifecycle events (arrival, queue/prefill/decode spans,
    /// preemptions) on the handle's track. Emission never feeds back
    /// into scheduling, so a traced core's report is bit-identical to
    /// an untraced one.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// The attached trace track, if any (drivers emit their
    /// delivery-side events on the same track as the core).
    pub fn trace_track(&self) -> Option<u32> {
        self.trace.as_ref().map(cimtpu_obs::TraceHandle::track)
    }

    /// Arms tenant-aware scheduling: continuous batching admits by
    /// (class priority, deficit-weighted service, tenant id) instead of
    /// FIFO, and preemption evicts the lowest-priority (then youngest)
    /// resident. A single-tenant schedule is bit-identical to leaving
    /// tenancy off. Run-to-completion policies keep FIFO batch formation
    /// but maintain the same per-tenant ledgers.
    ///
    /// # Panics
    ///
    /// Panics if any arrival was already pushed, or the schedule's
    /// classes and weights disagree in length.
    pub fn set_tenancy(&mut self, sched: &TenantSched) {
        assert!(self.arrivals.is_empty(), "set_tenancy must precede the first push");
        assert_eq!(
            sched.classes.len(),
            sched.weights.len(),
            "tenant classes and weights must align"
        );
        self.touch();
        self.tenancy = Some(TenancyState {
            classes: sched.classes.clone(),
            weights: sched.weights.clone(),
            service: vec![0; sched.classes.len()],
            preempted: vec![0; sched.classes.len()],
            admitted: Vec::new(),
            admitted_count: 0,
        });
    }

    /// Whether multi-tenant scheduling is armed with more than one
    /// tenant — the condition under which trace events carry tenant tags
    /// (single-tenant traces stay byte-identical to pre-tenancy ones).
    fn multi_tenant(&self) -> bool {
        self.tenancy.as_ref().is_some_and(|ts| ts.classes.len() > 1)
    }

    /// Marks the scheduling state dirty: the next
    /// [`next_action`](EngineCore::next_action) recomputes.
    fn touch(&mut self) {
        self.epoch += 1;
    }

    /// Monotone counter of state transitions: any mutation that can move
    /// the core's schedule bumps it, so a driver (or event queue) can tell
    /// whether a cached next-action time is still current.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Enqueues an arrival. Pushes must be in non-decreasing arrival
    /// order, and must precede [`close`](EngineCore::close).
    ///
    /// # Panics
    ///
    /// Panics if the core is closed or the arrival order is violated.
    pub fn push(&mut self, request: Request) {
        assert!(!self.closed, "push after close");
        if let Some(last) = self.arrivals.last() {
            assert!(
                request.arrival_s >= last.arrival_s,
                "arrivals must be pushed in time order"
            );
        }
        self.touch();
        if let Some(tr) = &self.trace {
            tr.arrival_for(
                request.id,
                request.arrival_s,
                self.multi_tenant().then_some(request.tenant),
            );
        }
        self.arrivals.push(request);
        self.first_token.push(Seconds::ZERO);
        self.ttft_set.push(false);
        if let Some(ts) = &mut self.tenancy {
            ts.admitted.push(false);
        }
    }

    /// Declares the arrival stream finished: tail batches smaller than a
    /// static batch size may now launch.
    pub fn close(&mut self) {
        self.touch();
        self.closed = true;
    }

    /// When the engine can next make progress without new arrivals:
    /// the start of the next decided batch, the end of a dynamic batching
    /// window, or the next continuous scheduling round. `None` means the
    /// engine is blocked until a push or [`close`](EngineCore::close) —
    /// or finished.
    pub fn next_action(&self) -> Option<Seconds> {
        if let Some((epoch, at)) = self.cached_action.get() {
            if epoch == self.epoch {
                return at;
            }
        }
        let at = match &self.state {
            State::Rtc(_) => self.rtc_decide(None).map(|p| match p {
                RtcPlan::Launch(l) => l.start,
                RtcPlan::Wait { at } => at,
            }),
            State::Cont(_) => self.cont_pick().map(|(_, t)| t),
        };
        self.cached_action.set(Some((self.epoch, at)));
        at
    }

    /// Performs the next scheduling action (see
    /// [`next_action`](EngineCore::next_action)).
    ///
    /// # Errors
    ///
    /// Returns an error if no action is runnable, an operator cannot be
    /// mapped, or the KV budget cannot hold even a single request.
    pub fn step(&mut self) -> Result<()> {
        self.touch();
        match self.state {
            State::Rtc(_) => {
                let plan = match self.rtc_decide(None) {
                    Some(RtcPlan::Launch(l)) => l,
                    Some(RtcPlan::Wait { at }) => match self.rtc_decide(Some(at)) {
                        Some(RtcPlan::Launch(l)) => l,
                        _ => unreachable!("a batching window resolves at its deadline"),
                    },
                    None => {
                        return Err(Error::invalid_config(
                            "EngineCore::step called with no runnable action",
                        ))
                    }
                };
                self.rtc_launch(plan)
            }
            State::Cont(_) => {
                let Some((ci, t)) = self.cont_pick() else {
                    return Err(Error::invalid_config(
                        "EngineCore::step called with no runnable action",
                    ));
                };
                self.cont_round(ci, t)
            }
        }
    }

    /// Launches a stalled partial batch: a static-batching engine whose
    /// queue can no longer fill (every closed-loop client is waiting on a
    /// completion this engine holds) launches what it has. Returns whether
    /// anything launched; a no-op for engines that are not stalled.
    ///
    /// # Errors
    ///
    /// Propagates pricing/allocation errors from the launch.
    pub fn flush_stalled(&mut self) -> Result<bool> {
        if self.closed || self.next >= self.arrivals.len() {
            return Ok(false);
        }
        let State::Rtc(st) = &self.state else { return Ok(false) };
        if self.rtc_decide(None).is_some() {
            return Ok(false);
        }
        // Only a static engine waiting for a full batch reaches here.
        let take = self.arrivals.len() - self.next;
        let chip = earliest(&st.free_at);
        let start = st.free_at[chip].max(self.arrivals[self.next + take - 1].arrival());
        self.touch();
        self.rtc_launch(RtcLaunch { chip, take, start })?;
        Ok(true)
    }

    /// Reverses [`close`](EngineCore::close) so a fault-aware driver can
    /// re-inject lost requests after the original stream exhausted (a
    /// retry arrives later than every organic arrival, so push-order
    /// monotonicity still holds). Callers re-close immediately after the
    /// push; the zero-fault [`drive`] loop never needs this.
    ///
    /// # Panics
    ///
    /// Panics on a crashed core (a dead replica takes no retries — the
    /// driver restarts it as a fresh core instead).
    pub fn reopen(&mut self) {
        assert!(!self.crashed, "reopen on a crashed core");
        self.touch();
        self.closed = false;
    }

    /// Sets the straggler multiplier applied to priced step latency from
    /// the next scheduling round on (`1.0` restores full speed). Energy
    /// is unchanged: a slowed chip computes the same work, only later.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite factor.
    pub fn set_slowdown(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "straggler slowdown must be a positive finite factor"
        );
        self.touch();
        self.slowdown = factor;
    }

    /// Kills the replica at simulated time `at`: every request still in
    /// flight is lost, along with all of its KV blocks and the prefix
    /// index contents. Returns the lost requests (queued, resident, and —
    /// because run-to-completion batches price their entire future at
    /// launch — requests whose completion would only have materialized
    /// after `at`, which are revoked), sorted by arrival order, for the
    /// driver to retry elsewhere. Completions that finished at or before
    /// `at` stand. Energy and busy time already accrued stay on the
    /// books: work a crash destroys was still computed and paid for.
    ///
    /// The core is inert afterwards — [`next_action`](Self::next_action)
    /// returns `None` and [`is_done`](Self::is_done) holds — and the
    /// driver models the restart by building a fresh core (empty
    /// allocator, cold caches) from the session after the repair delay.
    ///
    /// # Panics
    ///
    /// Panics if the core already crashed.
    pub fn crash(&mut self, at: Seconds) -> Vec<Request> {
        assert!(!self.crashed, "crash on an already-crashed core");
        self.touch();
        self.crashed = true;
        // Revoke completions scheduled past the crash instant (keeping
        // the class ledger index-aligned).
        let mut lost_ids: Vec<u64> = Vec::new();
        {
            let mut keep = Vec::with_capacity(self.completions.len());
            let mut keep_class = Vec::with_capacity(self.comp_class.len());
            for (c, k) in self.completions.iter().zip(&self.comp_class) {
                if c.finish > at {
                    lost_ids.push(c.id);
                } else {
                    keep.push(*c);
                    keep_class.push(*k);
                }
            }
            self.completions = keep;
            self.comp_class = keep_class;
        }
        self.drained = self.drained.min(self.completions.len());
        let mut lost_idx: Vec<usize> = Vec::new();
        match &mut self.state {
            State::Rtc(st) => {
                for alloc in &mut st.allocs {
                    alloc.release_all();
                }
                for index in st.prefix.iter_mut().flatten() {
                    index.clear();
                }
                st.kv_deferred_at.clear();
            }
            State::Cont(st) => {
                for chip in &mut st.chips {
                    lost_idx.extend(chip.active.drain(..).map(|a| a.idx));
                    lost_idx.extend(chip.resume.drain(..).map(|(idx, _)| idx));
                    chip.alloc.release_all();
                    if let Some(index) = &mut chip.prefix {
                        index.clear();
                    }
                }
            }
        }
        match &mut self.tenancy {
            Some(ts) => {
                // Weighted-fair admission may have left earlier arrivals
                // queued behind admitted later ones: the bitset, not
                // `next`, says who was still waiting.
                for (i, admitted) in ts.admitted.iter_mut().enumerate() {
                    if !*admitted {
                        lost_idx.push(i);
                        *admitted = true;
                    }
                }
                ts.admitted_count = ts.admitted.len();
            }
            None => lost_idx.extend(self.next..self.arrivals.len()),
        }
        for (i, r) in self.arrivals.iter().enumerate() {
            if lost_ids.contains(&r.id) {
                lost_idx.push(i);
            }
        }
        self.next = self.arrivals.len();
        self.closed = true;
        lost_idx.sort_unstable();
        lost_idx.dedup();
        lost_idx.into_iter().map(|i| self.arrivals[i]).collect()
    }

    /// Whether every pushed request has been completed and the stream is
    /// closed.
    pub fn is_done(&self) -> bool {
        self.closed && self.queued() == 0 && self.resident() == 0
    }

    /// Requests currently resident on an executor (being computed or
    /// awaiting resumption); always zero between run-to-completion
    /// launches, whose batches complete within one step.
    pub fn resident(&self) -> u64 {
        match &self.state {
            State::Rtc(_) => 0,
            State::Cont(st) => st
                .chips
                .iter()
                .map(|c| (c.active.len() + c.resume.len()) as u64)
                .sum(),
        }
    }

    /// Requests pushed but not yet scheduled.
    pub fn queued(&self) -> u64 {
        match &self.tenancy {
            Some(ts) => (self.arrivals.len() - ts.admitted_count) as u64,
            None => (self.arrivals.len() - self.next) as u64,
        }
    }

    /// Requests in flight at simulated time `t`: queued, resident, or
    /// already scheduled with a completion time after `t` (run-to-
    /// completion batches compute their whole future at launch).
    pub fn outstanding_at(&self, t: Seconds) -> u64 {
        self.queued()
            + self.resident()
            + self.completions.iter().filter(|c| c.finish > t).count() as u64
    }

    /// Requests in flight at simulated time `t`, broken out by service
    /// tier (indexed by [`SloClass::rank`]; untenanted requests count as
    /// their default `Standard` class). Entries always sum to
    /// [`outstanding_at`](Self::outstanding_at).
    pub fn outstanding_by_class_at(&self, t: Seconds) -> [u64; 3] {
        let mut out = [0u64; 3];
        match &self.tenancy {
            Some(ts) => {
                for (i, r) in self.arrivals.iter().enumerate() {
                    if !ts.admitted[i] {
                        out[r.class.rank()] += 1;
                    }
                }
            }
            None => {
                for r in &self.arrivals[self.next..] {
                    out[r.class.rank()] += 1;
                }
            }
        }
        if let State::Cont(st) = &self.state {
            for chip in &st.chips {
                for a in &chip.active {
                    out[self.arrivals[a.idx].class.rank()] += 1;
                }
                for &(idx, _) in &chip.resume {
                    out[self.arrivals[idx].class.rank()] += 1;
                }
            }
        }
        for (c, k) in self.completions.iter().zip(&self.comp_class) {
            if c.finish > t {
                out[k.rank()] += 1;
            }
        }
        out
    }

    /// Per-tenant service charged so far (prompt + decode tokens,
    /// charged once at first admission), when tenancy is armed.
    pub fn tenant_service(&self) -> Option<&[u64]> {
        self.tenancy.as_ref().map(|ts| ts.service.as_slice())
    }

    /// Per-tenant preemption counts, when tenancy is armed.
    pub fn tenant_preemptions(&self) -> Option<&[u64]> {
        self.tenancy.as_ref().map(|ts| ts.preempted.as_slice())
    }

    /// Live KV occupancy as a fraction of capacity (max over executors;
    /// 0 when the budget is unlimited).
    pub fn kv_frac(&self) -> f64 {
        let frac = |a: &PagedKvAllocator| match a.capacity_blocks() {
            Some(c) if c > 0 => a.used_blocks() as f64 / c as f64,
            _ => 0.0,
        };
        match &self.state {
            State::Rtc(st) => st.allocs.iter().map(frac).fold(0.0, f64::max),
            State::Cont(st) => st.chips.iter().map(|c| frac(&c.alloc)).fold(0.0, f64::max),
        }
    }

    /// All completions so far, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Completions produced since the last drain (for feeding closed-loop
    /// arrival streams).
    pub fn drain_new(&mut self) -> &[Completion] {
        let from = self.drained;
        self.drained = self.completions.len();
        &self.completions[from..]
    }

    /// Total chip energy so far.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Total time executors spent computing (priced segment latency, not
    /// idle gaps) — the numerator of a utilization metric.
    pub fn busy(&self) -> Seconds {
        self.busy
    }

    /// Memory-subsystem counters so far.
    pub fn memory_stats(&self) -> MemoryStats {
        match &self.state {
            State::Rtc(st) => MemoryStats {
                preemptions: 0,
                queue_full_s: st.queue_full.get(),
                kv_hwm_frac: st
                    .allocs
                    .iter()
                    .map(PagedKvAllocator::high_water_frac)
                    .fold(0.0, f64::max),
            },
            State::Cont(st) => {
                let mut memory = MemoryStats::NONE;
                for c in &st.chips {
                    memory.absorb(&MemoryStats {
                        preemptions: c.preemptions,
                        queue_full_s: c.queue_full.get(),
                        kv_hwm_frac: c.alloc.high_water_frac(),
                    });
                }
                memory
            }
        }
    }

    /// Prefix-sharing counters so far, summed over executors (all zero
    /// when sharing is off).
    pub fn prefix_stats(&self) -> PrefixStats {
        let mut total = PrefixStats::default();
        match &self.state {
            State::Rtc(st) => {
                for index in st.prefix.iter().flatten() {
                    total.absorb(&index.stats());
                }
            }
            State::Cont(st) => {
                for chip in &st.chips {
                    if let Some(index) = &chip.prefix {
                        total.absorb(&index.stats());
                    }
                }
            }
        }
        total
    }

    /// Builds the aggregate report over everything completed so far.
    ///
    /// # Panics
    ///
    /// Panics if nothing has completed.
    pub fn finish(&self, label: &str) -> ServingRun {
        let mut completions = self.completions.clone();
        completions.sort_by_key(|c| c.id);
        let report = ServingReport::from_completions(
            label,
            self.policy.name(),
            self.chips,
            &completions,
            self.energy,
            self.memory_stats(),
        );
        ServingRun { report, completions, prefix: self.prefix_stats() }
    }

    /// Batch formation at the queue head. `now` is the current driver
    /// time when resolving a batching window (`None` while merely
    /// querying): a dynamic window commits at its deadline because every
    /// arrival at or before it has been pushed by then (driver protocol).
    fn rtc_decide(&self, now: Option<Seconds>) -> Option<RtcPlan> {
        let State::Rtc(st) = &self.state else { unreachable!("rtc_decide on continuous") };
        let queue = &self.arrivals[self.next..];
        if queue.is_empty() {
            return None;
        }
        let chip = earliest(&st.free_at);
        let free = st.free_at[chip];
        match self.policy {
            BatchPolicy::Static { batch } => {
                // Wait for a full batch (the stream tail may be smaller).
                let b = batch.max(1) as usize;
                let take = if queue.len() >= b {
                    b
                } else if self.closed {
                    queue.len()
                } else {
                    return None; // blocked until more arrivals or close
                };
                let start = free.max(queue[take - 1].arrival());
                Some(RtcPlan::Launch(RtcLaunch { chip, take, start }))
            }
            BatchPolicy::Dynamic { max_batch, max_wait_ms } => {
                // Launch when `max_batch` have queued or the oldest waiter
                // has waited `max_wait_ms`, whichever happens first.
                let cap = max_batch.max(1) as usize;
                let t0 = free.max(queue[0].arrival());
                let deadline = t0.max(queue[0].arrival() + Seconds::from_millis(max_wait_ms));
                let take = queue
                    .iter()
                    .take(cap)
                    .take_while(|r| r.arrival() <= deadline)
                    .count();
                // The take is final once the batch is full, a queued
                // arrival already fell past the deadline, the stream is
                // closed, or the window itself has elapsed.
                let committed = take == cap
                    || queue.len() > take
                    || self.closed
                    || now.is_some_and(|n| n >= deadline);
                if committed {
                    let start = t0.max(queue[take - 1].arrival());
                    Some(RtcPlan::Launch(RtcLaunch { chip, take, start }))
                } else {
                    Some(RtcPlan::Wait { at: deadline })
                }
            }
            BatchPolicy::Continuous { .. } => unreachable!("continuous has its own loop"),
        }
    }

    /// Executes one decided run-to-completion launch: KV admission may
    /// shrink the policy's batch; the surviving members run to completion
    /// on the chosen executor.
    fn rtc_launch(&mut self, plan: RtcLaunch) -> Result<()> {
        let RtcLaunch { chip, take: policy_take, start: policy_start } = plan;
        let next = self.next;
        let (take, start) = {
            let State::Rtc(st) = &mut self.state else { unreachable!() };
            // Admission control: shrink the batch until its worst-case
            // footprint fits the (empty) allocator.
            let take =
                kv_admissible_prefix(&st.allocs[chip], &self.arrivals[next..next + policy_take])?;
            let start = if take == policy_take {
                policy_start
            } else {
                st.free_at[chip].max(self.arrivals[next + take - 1].arrival())
            };
            for r in &self.arrivals[next + take..next + policy_take] {
                st.kv_deferred_at.entry(r.id).or_insert(start);
            }
            for r in &self.arrivals[next..next + take] {
                if let Some(since) = st.kv_deferred_at.remove(&r.id) {
                    // Ready since `since` (or its arrival, if later), held
                    // back by KV until this launch.
                    st.queue_full += (start - since.max(r.arrival())).max(Seconds::ZERO);
                }
            }
            (take, start)
        };
        let members: Vec<Request> = self.arrivals[next..next + take].to_vec();
        let multi = self.multi_tenant();
        if let Some(tr) = &self.trace {
            for r in &members {
                tr.span_for(
                    EventKind::Queue,
                    r.id,
                    r.arrival_s,
                    start.get(),
                    multi.then_some(r.tenant),
                );
            }
        }
        {
            // Between run-to-completion batches only index-held prefix
            // blocks occupy the allocator; admission reserved the worst
            // case against an *empty* one, so evict (last-reference, LRU)
            // until the batch's worst case fits. Members re-match whatever
            // survives when they are admitted below.
            let State::Rtc(st) = &mut self.state else { unreachable!() };
            if let (Some(index), Some(_)) =
                (st.prefix[chip].as_mut(), st.allocs[chip].capacity_blocks())
            {
                let alloc = &mut st.allocs[chip];
                let worst: u64 =
                    members.iter().map(|r| alloc.blocks_for(r.prompt_len + r.steps)).sum();
                let free = alloc.free_blocks().unwrap_or(u64::MAX);
                if worst > free {
                    index.evict(alloc, worst - free);
                }
            }
        }
        let end = self.run_batch(&members, start, chip)?;
        let State::Rtc(st) = &mut self.state else { unreachable!() };
        st.free_at[chip] = end;
        self.next += take;
        if let Some(ts) = &mut self.tenancy {
            // Run-to-completion batch formation stays FIFO; the ledgers
            // still account service and admission per tenant.
            for r in &members {
                ts.service[r.tenant as usize] += r.prompt_len + r.steps;
            }
            for admitted in &mut ts.admitted[next..next + take] {
                *admitted = true;
            }
            ts.admitted_count += take;
        }
        Ok(())
    }

    /// Runs one formed batch to completion: grouped prefill (prompt padded
    /// to the longest member, optionally split into chunks), then one step
    /// per generated token. Static batching pads — finished requests hold
    /// their slot; dynamic shrinks the step batch as requests finish. KV
    /// blocks grow with each generated token and release when the batch
    /// retires.
    fn run_batch(&mut self, members: &[Request], start: Seconds, chip: usize) -> Result<Seconds> {
        let multi = self.multi_tenant();
        let b = members.len() as u64;
        let max_prompt = members.iter().map(|r| r.prompt_len).max().expect("non-empty");
        let max_steps = members.iter().map(|r| r.steps).max().expect("non-empty");
        let pads = self.policy.pads_to_batch_end();

        // Prefill KV lands as the prompt is ingested. With prefix sharing
        // on, each member first matches the chip's prefix index: fully
        // matched blocks attach by reference, and the member's uncached
        // full prompt blocks are promoted into the index (no speculative
        // tail copies — admission reserved exactly the worst case).
        let mut shared = vec![0u64; members.len()];
        {
            let State::Rtc(st) = &mut self.state else { unreachable!() };
            match st.prefix[chip].as_mut() {
                None => {
                    for r in members {
                        let ok = st.allocs[chip].try_grow(r.id, r.prompt_len);
                        debug_assert!(ok, "admission reserved the worst case");
                    }
                }
                Some(index) => {
                    for (i, r) in members.iter().enumerate() {
                        let tokens = r.prompt_tokens();
                        let m = index.lookup(&tokens);
                        let ok = st.allocs[chip].try_admit(r.id, m.blocks(), r.prompt_len);
                        debug_assert!(ok, "admission reserved the worst case");
                        if ok {
                            index.commit(&tokens, &m, r.id, &mut st.allocs[chip], false);
                            shared[i] =
                                m.matched_tokens().min(r.prompt_len.saturating_sub(1));
                        }
                    }
                }
            }
        }
        let mut t = start;
        let mut first_token = vec![Seconds::ZERO; members.len()];
        if self.has_prefill {
            if shared.iter().any(|&s| s > 0) {
                // Cold members prefill as one padded group (chunked or
                // monolithic, as configured); prefix-hit members compute
                // only their tails as a second group, padded to the
                // longest tail and deepest cached past. The whole batch's
                // first token stands at the end of all prefill, per
                // run-to-completion semantics.
                let cold = members
                    .iter()
                    .zip(&shared)
                    .filter(|(_, &s)| s == 0)
                    .map(|(r, _)| r.prompt_len)
                    .max();
                if let Some(cold_max) = cold {
                    let n = shared.iter().filter(|&&s| s == 0).count() as u64;
                    t += self.price_prefill_span(n, 0, cold_max)?;
                }
                let hits: Vec<(u64, u64)> = members
                    .iter()
                    .zip(&shared)
                    .filter(|(_, &s)| s > 0)
                    .map(|(r, &s)| (s, r.prompt_len - s))
                    .collect();
                if !hits.is_empty() {
                    let past = hits.iter().map(|&(s, _)| s).max().expect("non-empty");
                    let tail = hits.iter().map(|&(_, c)| c).max().expect("non-empty");
                    t += self.price_prefill_span(hits.len() as u64, past, past + tail)?;
                }
            } else {
                match self.memory.chunk_tokens {
                    None => {
                        let prefill = self.pricer.prefill(b, max_prompt)?;
                        t += stretch(prefill.latency, self.slowdown);
                        self.energy += prefill.total_energy();
                    }
                    Some(chunk) => {
                        let mut past = 0;
                        while past < max_prompt {
                            let c = chunk.min(max_prompt - past);
                            let cost = self.pricer.prefill_chunk(b, c, past)?;
                            t += stretch(cost.latency, self.slowdown);
                            self.energy += cost.total_energy();
                            past += c;
                        }
                    }
                }
            }
            first_token.fill(t);
            if let Some(tr) = &self.trace {
                for r in members {
                    tr.span_for(
                        EventKind::Prefill,
                        r.id,
                        start.get(),
                        t.get(),
                        multi.then_some(r.tenant),
                    );
                }
            }
        }
        let mut finish = vec![Seconds::ZERO; members.len()];
        for s in 0..max_steps {
            let active = if pads {
                b
            } else {
                members.iter().filter(|r| r.steps > s).count() as u64
            };
            {
                let State::Rtc(st) = &mut self.state else { unreachable!() };
                for r in members.iter().filter(|r| r.steps > s) {
                    let ok = st.allocs[chip].try_grow(r.id, r.prompt_len + s + 1);
                    debug_assert!(ok, "admission reserved the worst case");
                }
            }
            let step = self.pricer.step(active, max_prompt + s + 1)?;
            t += stretch(step.latency, self.slowdown);
            self.energy += step.total_energy();
            if s == 0 && !self.has_prefill {
                first_token.fill(t);
            }
            for (i, r) in members.iter().enumerate() {
                if r.steps == s + 1 {
                    finish[i] = t;
                }
            }
        }
        let State::Rtc(st) = &mut self.state else { unreachable!() };
        for (i, r) in members.iter().enumerate() {
            st.allocs[chip].release(r.id);
            // Padded batches release results when the batch completes.
            let release = if pads { t } else { finish[i] };
            if let Some(tr) = &self.trace {
                tr.span_for(
                    EventKind::Decode,
                    r.id,
                    first_token[i].get(),
                    release.get(),
                    multi.then_some(r.tenant),
                );
            }
            self.completions.push(Completion {
                id: r.id,
                arrival: r.arrival(),
                first_token: first_token[i],
                finish: release,
                steps: r.steps,
            });
            self.comp_class.push(r.class);
        }
        self.busy += t - start;
        Ok(t)
    }

    /// Prices `batch` members ingesting prompt positions `past..target`
    /// (their cached prefix ends at `past`): one pass per configured
    /// chunk window, or a single chunk covering the whole span.
    /// Accumulates energy and returns the added latency.
    fn price_prefill_span(&mut self, batch: u64, past: u64, target: u64) -> Result<Seconds> {
        let mut t = Seconds::ZERO;
        let mut at = past;
        let span = self.memory.chunk_tokens.unwrap_or(u64::MAX);
        while at < target {
            let c = span.min(target - at);
            let cost = self.pricer.prefill_chunk(batch, c, at)?;
            t += stretch(cost.latency, self.slowdown);
            self.energy += cost.total_energy();
            at += c;
        }
        Ok(t)
    }

    /// Next continuous scheduling round: a chip with resident work steps
    /// now; an idle chip waits for the next queued arrival (ties pick the
    /// lowest index, keeping the schedule deterministic).
    fn cont_pick(&self) -> Option<(usize, Seconds)> {
        let State::Cont(st) = &self.state else { unreachable!("cont_pick on rtc") };
        let mut pick: Option<(usize, Seconds)> = None;
        for (i, chip) in st.chips.iter().enumerate() {
            let candidate = if !chip.active.is_empty() || !chip.resume.is_empty() {
                chip.t
            } else if self.next < self.arrivals.len() {
                chip.t.max(self.arrivals[self.next].arrival())
            } else {
                continue;
            };
            if pick.is_none_or(|(_, best)| candidate < best) {
                pick = Some((i, candidate));
            }
        }
        pick
    }

    /// One continuous-batching round on chip `ci` at time `t`: admit into
    /// free slots (KV permitting), advance prefill (monolithic or one
    /// chunk), then one generation step for everything past its prefill,
    /// evicting the youngest resident request when KV blocks run out
    /// (recompute-on-resume).
    fn cont_round(&mut self, ci: usize, t: Seconds) -> Result<()> {
        let has_prefill = self.has_prefill;
        let chunking = self.memory.chunk_tokens;
        let slowdown = self.slowdown;
        let multi = self.multi_tenant();
        let State::Cont(st) = &mut self.state else { unreachable!() };
        let max_batch = st.max_batch;
        let chip = &mut st.chips[ci];
        chip.t = t;
        let round_start = chip.t;

        // Admit into free slots, KV permitting: preempted requests first
        // (their whole recomputed context must fit), then queued arrivals
        // (their prompt must fit). Head-of-line blocking on KV is what the
        // queue-full metric measures. With prefix sharing on, admission
        // matches the chip's prefix index (attaching cached blocks by
        // reference, evicting index-only blocks before giving up) and
        // records how many prompt tokens the member skips.
        let mut admitted: Vec<(usize, u64, u64)> = Vec::new(); // (idx, done, shared)
        let mut kv_blocked = false;
        while chip.active.len() + admitted.len() < max_batch as usize {
            if let Some(&(idx, done)) = chip.resume.front() {
                if let Some(shared) = cont_admit(chip, &self.arrivals[idx], done) {
                    admitted.push((idx, done, shared));
                    chip.resume.pop_front();
                } else {
                    kv_blocked = true;
                    break;
                }
            } else if let Some(ts) = &mut self.tenancy {
                // Deficit-weighted-fair admission: among tenants with an
                // arrival queued by now, pick the most senior class, then
                // the lowest weighted service (deficit), then the lowest
                // tenant id; within a tenant, FIFO. A KV refusal blocks
                // the round's head, exactly like the FIFO path.
                let mut pick: Option<(usize, (usize, f64, u32))> = None;
                let mut seen = vec![false; ts.classes.len()];
                let mut i = self.next;
                while i < self.arrivals.len() && self.arrivals[i].arrival() <= chip.t {
                    let r = &self.arrivals[i];
                    let tenant = r.tenant as usize;
                    if !ts.admitted[i] && !seen[tenant] {
                        seen[tenant] = true;
                        let key = (
                            ts.classes[tenant].rank(),
                            ts.service[tenant] as f64 / ts.weights[tenant],
                            r.tenant,
                        );
                        let better = pick.is_none_or(|(_, best)| {
                            key.0
                                .cmp(&best.0)
                                .then(key.1.total_cmp(&best.1))
                                .then(key.2.cmp(&best.2))
                                .is_lt()
                        });
                        if better {
                            pick = Some((i, key));
                        }
                    }
                    i += 1;
                }
                let Some((idx, _)) = pick else { break };
                if let Some(shared) = cont_admit(chip, &self.arrivals[idx], 0) {
                    let r = &self.arrivals[idx];
                    ts.service[r.tenant as usize] += r.prompt_len + r.steps;
                    ts.admitted[idx] = true;
                    ts.admitted_count += 1;
                    admitted.push((idx, 0, shared));
                    while self.next < self.arrivals.len() && ts.admitted[self.next] {
                        self.next += 1;
                    }
                } else {
                    kv_blocked = true;
                    break;
                }
            } else if self.next < self.arrivals.len()
                && self.arrivals[self.next].arrival() <= chip.t
            {
                if let Some(shared) = cont_admit(chip, &self.arrivals[self.next], 0) {
                    admitted.push((self.next, 0, shared));
                    self.next += 1;
                } else {
                    kv_blocked = true;
                    break;
                }
            } else {
                break;
            }
        }
        if kv_blocked && chip.active.is_empty() && admitted.is_empty() {
            // Nothing resident to retire or preempt: the head request can
            // never fit.
            return Err(Error::invalid_config(format!(
                "KV budget too small: a single request needs more than the {} block(s) \
                 of {} tokens available",
                chip.alloc.capacity_blocks().unwrap_or(0),
                chip.alloc.block_tokens(),
            )));
        }
        if let Some(tr) = &self.trace {
            // Fresh admissions close their queue span; resumed requests
            // already emitted theirs on first admission.
            for &(idx, done, _) in &admitted {
                if done == 0 {
                    let r = &self.arrivals[idx];
                    tr.span_for(
                        EventKind::Queue,
                        r.id,
                        r.arrival_s,
                        round_start.get(),
                        multi.then_some(r.tenant),
                    );
                }
            }
        }

        // Prefill the admitted group. Monolithic: one padded prefill now
        // (resumed members recompute their full context; with sharing,
        // cold members group and prefix-hit members compute only their
        // tail, priced as a chunk over the cached past). Chunked: members
        // enter mid-prefill — at their cached-prefix boundary when
        // sharing — and advance below.
        match chunking {
            None => {
                if !admitted.is_empty() && has_prefill {
                    let cold: Vec<&(usize, u64, u64)> =
                        admitted.iter().filter(|&&(_, _, s)| s == 0).collect();
                    if !cold.is_empty() {
                        let padded = cold
                            .iter()
                            .map(|&&(idx, done, _)| self.arrivals[idx].prompt_len + done)
                            .max()
                            .expect("non-empty");
                        let before = chip.t;
                        let prefill = self.pricer.prefill(cold.len() as u64, padded)?;
                        chip.t += stretch(prefill.latency, slowdown);
                        self.energy += prefill.total_energy();
                        for &&(idx, _, _) in &cold {
                            if !self.ttft_set[idx] {
                                self.first_token[idx] = chip.t;
                                self.ttft_set[idx] = true;
                            }
                            if let Some(tr) = &self.trace {
                                tr.span_for(
                                    EventKind::Prefill,
                                    self.arrivals[idx].id,
                                    before.get(),
                                    chip.t.get(),
                                    multi.then_some(self.arrivals[idx].tenant),
                                );
                            }
                        }
                    }
                    // Prefix-hit members compute only their tails, grouped
                    // into one chunk padded to the longest tail and
                    // deepest cached past (the same padding rule as
                    // grouped prefill).
                    let hits: Vec<&(usize, u64, u64)> =
                        admitted.iter().filter(|&&(_, _, s)| s > 0).collect();
                    if !hits.is_empty() {
                        let past = hits.iter().map(|&&(_, _, s)| s).max().expect("non-empty");
                        let tail = hits
                            .iter()
                            .map(|&&(idx, done, s)| self.arrivals[idx].prompt_len + done - s)
                            .max()
                            .expect("non-empty");
                        let before = chip.t;
                        let cost = self.pricer.prefill_chunk(hits.len() as u64, tail, past)?;
                        chip.t += stretch(cost.latency, slowdown);
                        self.energy += cost.total_energy();
                        for &&(idx, _, _) in &hits {
                            if !self.ttft_set[idx] {
                                self.first_token[idx] = chip.t;
                                self.ttft_set[idx] = true;
                            }
                            if let Some(tr) = &self.trace {
                                tr.span_for(
                                    EventKind::Prefill,
                                    self.arrivals[idx].id,
                                    before.get(),
                                    chip.t.get(),
                                    multi.then_some(self.arrivals[idx].tenant),
                                );
                            }
                        }
                    }
                }
                chip.active.extend(admitted.into_iter().map(|(idx, done, _)| {
                    let target = self.arrivals[idx].prompt_len + done;
                    Active { idx, done, prefilled: target, target }
                }));
            }
            Some(chunk) => {
                chip.active.extend(admitted.into_iter().map(|(idx, done, shared)| {
                    let target = self.arrivals[idx].prompt_len + done;
                    Active {
                        idx,
                        done,
                        // A model with no prefill phase (DiT) has no
                        // prompt to chunk: it enters decode directly,
                        // whatever its nominal prompt length. A cached
                        // prefix skips straight to its divergence point.
                        prefilled: if has_prefill { shared } else { target },
                        target,
                    }
                }));
                // One prefill chunk for everything still ingesting its
                // prompt, padded to the group's longest chunk/context.
                let prefilling: Vec<usize> = (0..chip.active.len())
                    .filter(|&p| chip.active[p].prefilled < chip.active[p].target)
                    .collect();
                if has_prefill && !prefilling.is_empty() {
                    let c = prefilling
                        .iter()
                        .map(|&p| (chip.active[p].target - chip.active[p].prefilled).min(chunk))
                        .max()
                        .expect("non-empty");
                    let past = prefilling
                        .iter()
                        .map(|&p| chip.active[p].prefilled)
                        .max()
                        .expect("non-empty");
                    let before = chip.t;
                    let cost = self.pricer.prefill_chunk(prefilling.len() as u64, c, past)?;
                    chip.t += stretch(cost.latency, slowdown);
                    self.energy += cost.total_energy();
                    let now = chip.t;
                    for p in prefilling {
                        let a = &mut chip.active[p];
                        a.prefilled = (a.prefilled + chunk).min(a.target);
                        if a.prefilled == a.target && !self.ttft_set[a.idx] {
                            self.first_token[a.idx] = now;
                            self.ttft_set[a.idx] = true;
                        }
                        if let Some(tr) = &self.trace {
                            tr.span_for(
                                EventKind::Prefill,
                                self.arrivals[a.idx].id,
                                before.get(),
                                now.get(),
                                multi.then_some(self.arrivals[a.idx].tenant),
                            );
                        }
                    }
                }
            }
        }

        // One generation step for every request past its prefill. Each
        // needs one more token of KV; when blocks run out, evict the
        // youngest resident request (recompute-on-resume) until the rest
        // fit.
        loop {
            let decoders: Vec<usize> = (0..chip.active.len())
                .filter(|&p| chip.active[p].prefilled >= chip.active[p].target)
                .collect();
            if decoders.is_empty() {
                break;
            }
            let fits = decoders.iter().all(|&p| {
                let a = &chip.active[p];
                chip.alloc
                    .try_grow(self.arrivals[a.idx].id, self.arrivals[a.idx].prompt_len + a.done + 1)
            });
            if !fits {
                // Cheapest relief first: evict cached prefix blocks whose
                // last reference is the index (never a resident request's
                // blocks), then retry the round before preempting anyone.
                if let Some(index) = &mut chip.prefix {
                    if index.evict(&mut chip.alloc, decoders.len() as u64) > 0 {
                        continue;
                    }
                }
                // Youngest = latest arrival (ids are arrival-ordered);
                // with tenancy armed, the lowest-priority class goes
                // first — batch-tier residents absorb preemptions before
                // any interactive-tier KV is touched — youngest-first
                // within a tier.
                let victim_pos = match &self.tenancy {
                    Some(ts) => (0..chip.active.len())
                        .max_by_key(|&p| {
                            let idx = chip.active[p].idx;
                            (ts.classes[self.arrivals[idx].tenant as usize].rank(), idx)
                        })
                        .expect("non-empty"),
                    None => (0..chip.active.len())
                        .max_by_key(|&p| chip.active[p].idx)
                        .expect("non-empty"),
                };
                let victim = chip.active.remove(victim_pos);
                chip.alloc.release(self.arrivals[victim.idx].id);
                if let Some(ts) = &mut self.tenancy {
                    ts.preempted[self.arrivals[victim.idx].tenant as usize] += 1;
                }
                if let Some(tr) = &self.trace {
                    tr.instant_for(
                        EventKind::Preempt,
                        self.arrivals[victim.idx].id,
                        chip.t.get(),
                        multi.then_some(self.arrivals[victim.idx].tenant),
                    );
                }
                chip.resume.push_back((victim.idx, victim.done));
                chip.preemptions += 1;
                kv_blocked = true;
                if chip.active.is_empty() {
                    return Err(Error::invalid_config(
                        "KV budget too small to sustain a single running request",
                    ));
                }
                continue;
            }
            let b = decoders.len() as u64;
            let ctx = decoders
                .iter()
                .map(|&p| {
                    let a = &chip.active[p];
                    self.arrivals[a.idx].prompt_len + a.done
                })
                .max()
                .expect("non-empty")
                + 1;
            let step = self.pricer.step(b, ctx)?;
            chip.t += stretch(step.latency, slowdown);
            self.energy += step.total_energy();
            let now = chip.t;
            for &p in &decoders {
                let a = &mut chip.active[p];
                a.done += 1;
                if a.done == 1 && !has_prefill && !self.ttft_set[a.idx] {
                    self.first_token[a.idx] = now;
                    self.ttft_set[a.idx] = true;
                }
            }
            let ContChip { active, alloc, .. } = chip;
            let arrivals = &self.arrivals;
            let first_token = &self.first_token;
            let completions = &mut self.completions;
            let comp_class = &mut self.comp_class;
            let trace = &self.trace;
            active.retain(|a| {
                if a.prefilled >= a.target && a.done >= arrivals[a.idx].steps {
                    alloc.release(arrivals[a.idx].id);
                    if let Some(tr) = trace {
                        tr.span_for(
                            EventKind::Decode,
                            arrivals[a.idx].id,
                            first_token[a.idx].get(),
                            now.get(),
                            multi.then_some(arrivals[a.idx].tenant),
                        );
                    }
                    completions.push(Completion {
                        id: arrivals[a.idx].id,
                        arrival: arrivals[a.idx].arrival(),
                        first_token: first_token[a.idx],
                        finish: now,
                        steps: arrivals[a.idx].steps,
                    });
                    comp_class.push(arrivals[a.idx].class);
                    false
                } else {
                    true
                }
            });
            break;
        }
        // A round that held a ready request back on KV charges its
        // duration to the queue-full clock.
        if kv_blocked {
            chip.queue_full += chip.t - round_start;
        }
        debug_assert!(
            chip.t > round_start || !chip.active.is_empty() || !chip.resume.is_empty(),
            "a scheduled round must make progress"
        );
        self.busy += chip.t - round_start;
        Ok(())
    }
}

/// The longest queue prefix whose worst-case KV footprint (prompt + every
/// generated token) fits an empty allocator — run-to-completion admission
/// control.
///
/// # Errors
///
/// Returns an error if even the first request can never fit.
fn kv_admissible_prefix(alloc: &PagedKvAllocator, queue: &[Request]) -> Result<usize> {
    let Some(capacity) = alloc.capacity_blocks() else {
        return Ok(queue.len());
    };
    let mut blocks = 0;
    let mut take = 0;
    for r in queue {
        let need = alloc.blocks_for(r.prompt_len + r.steps);
        if blocks + need > capacity {
            break;
        }
        blocks += need;
        take += 1;
    }
    if take == 0 {
        return Err(Error::invalid_config(format!(
            "KV budget too small: request {} needs {} blocks but capacity is {capacity}",
            queue[0].id,
            alloc.blocks_for(queue[0].prompt_len + queue[0].steps),
        )));
    }
    Ok(take)
}

/// Tries to admit `request` (resumed with `done` already-generated
/// tokens) onto a continuous-batching chip, covering `prompt + done`
/// tokens of KV. With prefix sharing on, cached blocks attach by
/// reference, index-only blocks are evicted before giving up, and the
/// admitted request's uncached prompt blocks are committed back into the
/// index (including a best-effort partial-tail copy). Returns the
/// shareable token count — how much of the prefill the scheduler may
/// skip, capped so the prompt's final token is always computed — or
/// `None` if the request does not fit.
fn cont_admit(chip: &mut ContChip, request: &Request, done: u64) -> Option<u64> {
    let target = request.prompt_len + done;
    let Some(index) = &mut chip.prefix else {
        return chip.alloc.try_grow(request.id, target).then_some(0);
    };
    let tokens = request.prompt_tokens();
    let m = index.lookup(&tokens);
    let mut admitted = chip.alloc.try_admit(request.id, m.blocks(), target);
    if !admitted {
        // Evict cached blocks nobody references (LRU) and retry once,
        // pinning every block the match reads — the attached full blocks
        // *and* the partial copy-on-write source — so eviction cannot
        // take the very prefix this request is about to use.
        let pinned = m.blocks().iter().copied().chain(m.partial_block());
        for b in pinned.clone() {
            chip.alloc.retain_shared(b);
        }
        let need = chip.alloc.blocks_for(target).saturating_sub(m.blocks().len() as u64);
        let free = chip.alloc.free_blocks().unwrap_or(u64::MAX);
        let evicted = index.evict(&mut chip.alloc, need.saturating_sub(free));
        for b in pinned {
            chip.alloc.release_shared(b);
        }
        if evicted > 0 {
            admitted = chip.alloc.try_admit(request.id, m.blocks(), target);
        }
    }
    if !admitted {
        return None;
    }
    index.commit(&tokens, &m, request.id, &mut chip.alloc, true);
    Some(m.matched_tokens().min(request.prompt_len.saturating_sub(1)))
}

/// Applies a straggler multiplier to a priced latency. The factor 1.0
/// short-circuits so un-faulted runs see bit-identical arithmetic.
fn stretch(latency: Seconds, slowdown: f64) -> Seconds {
    if slowdown == 1.0 {
        latency
    } else {
        Seconds::new(latency.get() * slowdown)
    }
}

/// Index of the executor that frees earliest (ties pick the lowest index,
/// keeping the schedule deterministic).
fn earliest(free_at: &[Seconds]) -> usize {
    let mut best = 0;
    for (i, &t) in free_at.iter().enumerate().skip(1) {
        if t < free_at[best] {
            best = i;
        }
    }
    best
}

/// Driver-side observers for the [`drive_with`] event loop.
///
/// `route` picks the core an arrival is pushed into; the remaining hooks
/// let a fleet driver maintain incremental state (router snapshots,
/// per-replica ledgers) without rescanning the cores on every event. A
/// plain `FnMut(&Request, &[EngineCore]) -> usize` routing closure
/// implements the trait with no-op observers, so single-engine callers
/// keep using [`drive`].
pub trait DriveHooks {
    /// Chooses the core index for `request` (out-of-range clamps).
    fn route(&mut self, request: &Request, cores: &[EngineCore<'_>]) -> usize;

    /// Called after `request`-routing pushed into (clamped) core `k`.
    fn on_push(&mut self, k: usize, cores: &[EngineCore<'_>]) {
        let _ = (k, cores);
    }

    /// Called after core `k` stepped (or flushed a stalled batch), with
    /// the completions the step produced.
    fn on_step(&mut self, k: usize, cores: &[EngineCore<'_>], new: &[Completion]) {
        let _ = (k, cores, new);
    }
}

/// Adapts a routing closure into no-op [`DriveHooks`].
struct RouteOnly<F>(F);

impl<F: FnMut(&Request, &[EngineCore<'_>]) -> usize> DriveHooks for RouteOnly<F> {
    fn route(&mut self, request: &Request, cores: &[EngineCore<'_>]) -> usize {
        (self.0)(request, cores)
    }
}

/// Drives one or more engine cores against an arrival stream until both
/// are drained: the shared event loop of single-engine closed-loop runs
/// and fleet-level (cluster) simulation.
///
/// Protocol, in simulated-time order: the earliest pending event wins.
/// An arrival at or before every engine's next action is routed (the
/// `route` callback picks a core index; out-of-range indices clamp) and
/// pushed; otherwise the earliest-action engine steps (ties pick the
/// lowest core index) and its new completions feed the stream (closed-loop
/// clients schedule their next request). When the stream exhausts, every
/// core is closed. If nothing can act and the stream still holds requests
/// (static batching waiting for a batch that closed-loop clients can no
/// longer fill), stalled cores flush their partial batches.
///
/// Next-action times live in an [`ActionHeap`], so each event costs
/// `O(log n)` instead of an `O(n)` rescan of every core; the heap's
/// tie-break (lowest core index at equal times) reproduces the original
/// scan bit-for-bit.
///
/// # Errors
///
/// Propagates engine errors, and reports a deadlock if no engine can make
/// progress on a non-exhausted stream (cannot happen with the built-in
/// policies; the flush rule above resolves the static-batching stall).
pub fn drive(
    cores: &mut [EngineCore<'_>],
    stream: &mut ArrivalStream,
    route: impl FnMut(&Request, &[EngineCore<'_>]) -> usize,
) -> Result<()> {
    drive_with(cores, stream, RouteOnly(route))
}

/// [`drive`] with full [`DriveHooks`] — the entry point fleet drivers use
/// to observe pushes and completions incrementally.
///
/// # Errors
///
/// As for [`drive`].
pub fn drive_with(
    cores: &mut [EngineCore<'_>],
    stream: &mut ArrivalStream,
    mut hooks: impl DriveHooks,
) -> Result<()> {
    assert!(!cores.is_empty(), "drive needs at least one core");
    let mut heap = ActionHeap::new(cores.len());
    for (i, core) in cores.iter().enumerate() {
        heap.set(i, core.next_action());
    }
    // Completions drain into a scratch buffer reused across steps — the
    // closed-loop feedback path allocates nothing per event.
    let mut scratch: Vec<Completion> = Vec::new();
    loop {
        let action = heap.peek();
        let arrival = stream.peek();
        match (arrival, action) {
            (Some(ta), act) if act.is_none_or(|(_, t)| ta <= t) => {
                let request = stream.pop();
                let k = hooks.route(&request, cores).min(cores.len() - 1);
                cores[k].push(request);
                heap.set(k, cores[k].next_action());
                hooks.on_push(k, cores);
                if stream.exhausted() {
                    for core in cores.iter_mut() {
                        core.close();
                    }
                    for (i, core) in cores.iter().enumerate() {
                        heap.set(i, core.next_action());
                    }
                }
            }
            (_, Some((i, _))) => {
                cores[i].step()?;
                heap.set(i, cores[i].next_action());
                scratch.clear();
                scratch.extend_from_slice(cores[i].drain_new());
                for c in &scratch {
                    stream.on_complete(c);
                }
                hooks.on_step(i, cores, &scratch);
            }
            // `(Some, None)` is caught by the first arm (its guard is
            // vacuously true with no pending action).
            (_, None) => {
                if stream.exhausted() {
                    debug_assert!(cores.iter().all(EngineCore::is_done));
                    return Ok(());
                }
                // Closed-loop stall: clients wait on completions held in
                // partial batches. Flush the lowest stalled core and
                // re-enter the loop (its completions may unblock clients).
                let mut progressed = false;
                for i in 0..cores.len() {
                    if cores[i].flush_stalled()? {
                        heap.set(i, cores[i].next_action());
                        scratch.clear();
                        scratch.extend_from_slice(cores[i].drain_new());
                        for c in &scratch {
                            stream.on_complete(c);
                        }
                        hooks.on_step(i, cores, &scratch);
                        progressed = true;
                        break;
                    }
                }
                if !progressed {
                    return Err(Error::invalid_config(
                        "serving driver stalled: closed-loop clients wait on completions \
                         no engine can produce",
                    ));
                }
            }
        }
    }
}

/// The pre-heap linear-scan driver, kept verbatim as the equivalence
/// oracle for the event-queue rewrite: proptests pin [`drive`] bit-equal
/// to this loop across policies, traffic shapes, and router choices.
#[cfg(test)]
pub(crate) fn drive_scan(
    cores: &mut [EngineCore<'_>],
    stream: &mut ArrivalStream,
    mut route: impl FnMut(&Request, &[EngineCore<'_>]) -> usize,
) -> Result<()> {
    assert!(!cores.is_empty(), "drive needs at least one core");
    loop {
        let mut action: Option<(usize, Seconds)> = None;
        for (i, core) in cores.iter().enumerate() {
            if let Some(t) = core.next_action() {
                if action.is_none_or(|(_, best)| t < best) {
                    action = Some((i, t));
                }
            }
        }
        let arrival = stream.peek();
        match (arrival, action) {
            (Some(ta), act) if act.is_none_or(|(_, t)| ta <= t) => {
                let request = stream.pop();
                let k = route(&request, cores).min(cores.len() - 1);
                cores[k].push(request);
                if stream.exhausted() {
                    for core in cores.iter_mut() {
                        core.close();
                    }
                }
            }
            (_, Some((i, _))) => {
                cores[i].step()?;
                let new: Vec<Completion> = cores[i].drain_new().to_vec();
                for c in &new {
                    stream.on_complete(c);
                }
            }
            (_, None) => {
                if stream.exhausted() {
                    debug_assert!(cores.iter().all(EngineCore::is_done));
                    return Ok(());
                }
                let mut progressed = false;
                for core in cores.iter_mut() {
                    if core.flush_stalled()? {
                        let new: Vec<Completion> = core.drain_new().to_vec();
                        for c in &new {
                            stream.on_complete(c);
                        }
                        progressed = true;
                        break;
                    }
                }
                if !progressed {
                    return Err(Error::invalid_config(
                        "serving driver stalled: closed-loop clients wait on completions \
                         no engine can produce",
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ArrivalPattern, BatchPolicy, LenDist, Parallelism, ServingEngine, ServingModel,
        TrafficSpec,
    };
    use cimtpu_core::TpuConfig;
    use cimtpu_models::TransformerConfig;

    fn tiny_engine(policy: BatchPolicy) -> ServingEngine {
        ServingEngine::new(
            TpuConfig::tpuv4i(),
            ServingModel::Llm(TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap()),
            Parallelism::Replicated { chips: 1 },
            policy,
        )
        .unwrap()
    }

    fn burst(requests: u64) -> TrafficSpec {
        TrafficSpec {
            requests,
            arrival: ArrivalPattern::Burst,
            prompt: LenDist::Fixed(16),
            steps: LenDist::Fixed(4),
            prefix: crate::PrefixTraffic::None,
            seed: 1,
        }
    }

    #[test]
    fn incremental_core_matches_batch_run() {
        // Pushing arrivals one by one (with interleaved stepping, as the
        // cluster driver does) must reproduce the push-all result.
        for policy in [
            BatchPolicy::Static { batch: 2 },
            BatchPolicy::Dynamic { max_batch: 2, max_wait_ms: 5.0 },
            BatchPolicy::Continuous { max_batch: 2 },
        ] {
            let engine = tiny_engine(policy);
            let traffic = TrafficSpec {
                arrival: ArrivalPattern::OpenLoop { rate_rps: 500.0 },
                ..burst(5)
            };
            let reference = engine.run("ref", &traffic).unwrap();

            let session = crate::EngineSession::new(&engine).unwrap();
            let mut core = session.core().unwrap();
            let mut stream = ArrivalStream::new(&traffic).unwrap();
            drive(std::slice::from_mut(&mut core), &mut stream, |_, _| 0).unwrap();
            let run = core.finish("ref");
            assert_eq!(run.report, reference.report, "{}", policy.name());
            assert_eq!(run.completions, reference.completions);
        }
    }

    #[test]
    fn static_core_waits_until_closed() {
        let engine = tiny_engine(BatchPolicy::Static { batch: 4 });
        let session = crate::EngineSession::new(&engine).unwrap();
        let mut core = session.core().unwrap();
        for r in burst(2).generate() {
            core.push(r);
        }
        // Two of four queued: blocked until the stream closes.
        assert_eq!(core.next_action(), None);
        assert_eq!(core.queued(), 2);
        core.close();
        assert!(core.next_action().is_some());
        core.step().unwrap();
        assert!(core.is_done());
        assert_eq!(core.completions().len(), 2);
        assert_eq!(core.outstanding_at(Seconds::new(1e9)), 0);
        assert!(core.outstanding_at(Seconds::ZERO) > 0, "batch finishes after t=0");
    }

    #[test]
    fn flush_launches_a_stalled_partial_batch() {
        let engine = tiny_engine(BatchPolicy::Static { batch: 4 });
        let session = crate::EngineSession::new(&engine).unwrap();
        let mut core = session.core().unwrap();
        for r in burst(3).generate() {
            core.push(r);
        }
        assert_eq!(core.next_action(), None);
        assert!(core.flush_stalled().unwrap());
        assert_eq!(core.completions().len(), 3);
        // Nothing left to flush.
        assert!(!core.flush_stalled().unwrap());
    }

    #[test]
    fn crash_loses_exactly_the_in_flight_set() {
        let engine = tiny_engine(BatchPolicy::Continuous { max_batch: 2 });
        let session = crate::EngineSession::new(&engine).unwrap();
        let mut core = session.core().unwrap();
        for r in burst(6).generate() {
            core.push(r);
        }
        core.close();
        // Step until some (not all) requests completed: 2 resident, rest
        // queued.
        while core.completions().is_empty() {
            core.step().unwrap();
        }
        let done: Vec<u64> = core.completions().iter().map(|c| c.id).collect();
        let at = core.completions().iter().map(|c| c.finish).fold(Seconds::ZERO, Seconds::max);
        let lost = core.crash(at);
        // Conservation: every pushed request is either completed or lost,
        // never both, never dropped.
        assert_eq!(done.len() + lost.len(), 6);
        for c in core.completions() {
            assert!(!lost.iter().any(|r| r.id == c.id), "lost xor completed");
        }
        assert!(core.is_done(), "a crashed core is inert");
        assert_eq!(core.next_action(), None);
        assert_eq!(core.kv_frac(), 0.0, "all KV blocks released");
        assert_eq!(core.outstanding_at(Seconds::ZERO), done.len() as u64);
        assert!(core.energy().get() > 0.0, "spent energy stays on the books");
    }

    #[test]
    fn rtc_crash_revokes_future_completions() {
        // A static batch prices its whole future at launch; a crash at
        // t=0 revokes all of it.
        let engine = tiny_engine(BatchPolicy::Static { batch: 2 });
        let session = crate::EngineSession::new(&engine).unwrap();
        let mut core = session.core().unwrap();
        for r in burst(2).generate() {
            core.push(r);
        }
        core.close();
        core.step().unwrap();
        assert_eq!(core.completions().len(), 2);
        let lost = core.crash(Seconds::ZERO);
        assert_eq!(core.completions().len(), 0);
        assert_eq!(lost.len(), 2);
    }

    #[test]
    fn slowdown_stretches_latency_not_energy() {
        let run = |factor: f64| {
            let engine = tiny_engine(BatchPolicy::Continuous { max_batch: 4 });
            let session = crate::EngineSession::new(&engine).unwrap();
            let mut core = session.core().unwrap();
            core.set_slowdown(factor);
            for r in burst(4).generate() {
                core.push(r);
            }
            core.close();
            while core.next_action().is_some() {
                core.step().unwrap();
            }
            (core.busy(), core.energy())
        };
        let (busy1, energy1) = run(1.0);
        let (busy3, energy3) = run(3.0);
        assert!((busy3.get() - 3.0 * busy1.get()).abs() < 1e-12 * busy3.get());
        assert_eq!(energy1, energy3, "a straggler burns time, not extra energy");
    }

    #[test]
    fn busy_time_tracks_compute() {
        let engine = tiny_engine(BatchPolicy::Continuous { max_batch: 4 });
        let session = crate::EngineSession::new(&engine).unwrap();
        let mut core = session.core().unwrap();
        for r in burst(2).generate() {
            core.push(r);
        }
        core.close();
        while core.next_action().is_some() {
            core.step().unwrap();
        }
        let run = core.finish("busy");
        // One executor, burst arrivals: busy time equals the makespan.
        assert!((core.busy().get() - run.report.makespan_s).abs() < 1e-12);
        assert!(core.energy().get() > 0.0);
    }

    /// Runs a mixed-policy fleet through the given driver and returns
    /// every core's finished run.
    fn fleet_run(
        engines: &[ServingEngine],
        traffic: &TrafficSpec,
        driver: impl FnOnce(
            &mut [EngineCore<'_>],
            &mut ArrivalStream,
            &mut dyn FnMut(&Request, &[EngineCore<'_>]) -> usize,
        ) -> Result<()>,
    ) -> Vec<crate::ServingRun> {
        let sessions: Vec<crate::EngineSession> =
            engines.iter().map(|e| crate::EngineSession::new(e).unwrap()).collect();
        let mut cores: Vec<EngineCore<'_>> =
            sessions.iter().map(|s| s.core().unwrap()).collect();
        let mut stream = ArrivalStream::new(traffic).unwrap();
        // Round-robin perturbed by the request id: every core sees work
        // and equal-time tie-breaks get exercised from both sides.
        let mut rr = 0usize;
        let mut route = move |request: &Request, cores: &[EngineCore<'_>]| {
            rr += 1;
            (rr + request.id as usize) % cores.len()
        };
        driver(&mut cores, &mut stream, &mut route).unwrap();
        cores.iter().map(|core| core.finish("eq")).collect()
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// The heap-scheduled [`drive`] replays the pre-heap linear scan
        /// ([`drive_scan`]) bit-for-bit — same per-core reports, same
        /// completions — across batch policies and traffic shapes.
        #[test]
        fn heap_drive_matches_scan_oracle(seed in 0u64..1_000) {
            let engines = [
                tiny_engine(BatchPolicy::Continuous { max_batch: 2 }),
                tiny_engine(BatchPolicy::Static { batch: 2 }),
                tiny_engine(BatchPolicy::Dynamic { max_batch: 3, max_wait_ms: 0.5 }),
            ];
            let base = TrafficSpec {
                requests: 12,
                arrival: ArrivalPattern::OpenLoop { rate_rps: 4_000.0 },
                prompt: LenDist::Uniform { lo: 8, hi: 32 },
                steps: LenDist::Uniform { lo: 2, hi: 8 },
                prefix: crate::PrefixTraffic::None,
                seed,
            };
            let traffics = [
                base.clone(),
                TrafficSpec {
                    arrival: ArrivalPattern::ClosedLoop { clients: 3, think_ms: 0.5 },
                    ..base.clone()
                },
                TrafficSpec { arrival: ArrivalPattern::Burst, ..base },
            ];
            for traffic in traffics {
                let fast = fleet_run(&engines, &traffic, |cores, stream, route| {
                    drive(cores, stream, route)
                });
                let slow = fleet_run(&engines, &traffic, |cores, stream, route| {
                    drive_scan(cores, stream, route)
                });
                prop_assert_eq!(&fast, &slow, "{:?}", traffic.arrival);
            }
        }
    }
}
