//! Request-level serving simulation driver.
//!
//! ```text
//! serve_sim [--scenario NAME|all] [--seed N] [--workers N] [--json PATH]
//!           [--kv-budget BUDGET] [--clients N] [--think-ms MS]
//!           [--tenants SPEC] [--trace-in PATH] [--trace-out PATH]
//! ```
//!
//! Runs the named serving scenario (default: all headline scenarios) and
//! prints throughput, latency percentiles, energy per request, and
//! KV-cache pressure counters (preemptions, queue-full time, occupancy
//! high-water mark). Scenarios are independent, so they fan out over the
//! `cimtpu_bench::sweep` worker pool; `--workers N` overrides the
//! `CIMTPU_WORKERS` environment variable (see `cimtpu_bench::sweep`).
//! Output is deterministic for a fixed `--seed`.
//!
//! `--kv-budget BUDGET` overrides the scenario's KV budget so
//! memory-pressure studies are tunable from the CLI: `unlimited`, `hbm`
//! (HBM capacity minus resident weights), or a byte count with an
//! optional `KiB`/`MiB`/`GiB`/`TiB` suffix (e.g. `1GiB`) — the grammar of
//! [`cimtpu_serving::parse_kv_budget`]. `--clients N` converts the
//! scenario's traffic to closed loop: `N` concurrent clients, each with
//! one request in flight, re-issuing after a think time (`--think-ms`,
//! default 10 ms).
//!
//! `--tenants SPEC` splits each scenario's traffic across SLO tenants
//! (comma-separated `name=class[:weight[:slo_ms]]`, grammar in
//! [`cimtpu_serving::parse_tenants`]) and schedules it weighted-fair:
//! admission is priority-first then deficit-weighted-fair, KV preemption
//! evicts batch-tier residents before interactive ones, and reports gain
//! a per-tenant section (goodput, SLO attainment, Jain's fairness
//! index). Single-tenant output is byte-identical to builds without the
//! flag.
//!
//! `--trace-out PATH` writes each selected scenario's synthesized
//! traffic as a JSONL request trace and exits without simulating;
//! `--trace-in PATH` replaces each scenario's traffic with the trace at
//! PATH (replayed byte-identically, so `--seed` no longer perturbs
//! arrivals). See [`cimtpu_serving::trace`] for the format.
//!
//! `--json PATH` additionally writes the full `ServingReport` list as
//! pretty-printed JSON (`-` writes JSON to stdout instead of the text
//! report). The committed `BENCH_serving.json` baseline is exactly
//! `serve_sim --json BENCH_serving.json`.

use cimtpu_bench::sweep;
use cimtpu_serving::cli::{self, SimFlags};
use cimtpu_serving::scenario::{self, Scenario};
use cimtpu_serving::{parse_tenants, ArrivalPattern, ServingReport};

fn main() {
    let flags = match SimFlags::parse("serve_sim", "the scenario's", false, || {
        for s in scenario::headline() {
            println!("  {:<20} {}", s.name, s.description);
        }
        for s in [scenario::smoke(), scenario::smoke_kv(), scenario::smoke_prefix()] {
            println!("  {:<20} {}", s.name, s.description);
        }
    }) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("serve_sim: {e}");
            std::process::exit(2);
        }
    };

    let mut scenarios: Vec<Scenario> = if flags.scenario == "all" {
        scenario::headline()
    } else {
        match scenario::by_name(&flags.scenario) {
            Ok(s) => vec![s],
            Err(e) => {
                eprintln!("serve_sim: {e}");
                std::process::exit(2);
            }
        }
    };
    for s in &mut scenarios {
        if let Some(budget) = flags.kv_budget {
            s.memory.budget = budget;
        }
        if let Some(clients) = flags.clients {
            s.traffic.arrival =
                ArrivalPattern::ClosedLoop { clients, think_ms: flags.think_ms };
        }
    }
    // `--trace-in` replaces each scenario's traffic wholesale (the trace
    // carries arrivals, lengths, sessions, tenants, and classes), so it
    // composes with neither `--clients` nor `--seed` reseeding.
    if let Some(path) = flags.trace_in.as_deref() {
        let replay = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}"))
            .and_then(|text| {
                cimtpu_serving::parse_jsonl(&text)
                    .and_then(cimtpu_serving::replay_spec)
                    .map_err(|e| e.to_string())
            });
        match replay {
            Ok(spec) => {
                for s in &mut scenarios {
                    s.traffic = spec.clone();
                }
            }
            Err(e) => {
                eprintln!("serve_sim: {e}");
                std::process::exit(2);
            }
        }
    }
    let seed = flags.seed;
    // `--trace-out` is the seeded synthesis tool: write each scenario's
    // materialized traffic as a JSONL trace and exit without simulating.
    if let Some(path) = flags.trace_out.as_deref() {
        let traffics: Vec<(&str, cimtpu_serving::TrafficSpec)> = scenarios
            .iter()
            .map(|s| {
                let mut traffic = s.traffic.clone();
                if let Some(seed) = seed {
                    traffic.seed = seed;
                }
                (s.name, traffic)
            })
            .collect();
        if cli::emit_traces("serve_sim", path, &traffics) {
            std::process::exit(1);
        }
        return;
    }
    let tenants = match flags.tenants.as_deref() {
        None => None,
        Some(_) if flags.trace_in.is_some() => {
            // The trace records already carry tenant assignments; there
            // is no base traffic left to split.
            eprintln!("serve_sim: --tenants cannot be combined with --trace-in");
            std::process::exit(2);
        }
        Some(spec) => match parse_tenants(spec) {
            Ok(parts) => Some(parts),
            Err(e) => {
                eprintln!("serve_sim: {e}");
                std::process::exit(2);
            }
        },
    };

    // Scenarios are independent simulations: fan them out over the sweep
    // worker pool (results return in scenario order, so output is stable).
    let results = sweep::parallel_map(&scenarios, |s| match &tenants {
        Some(parts) => s.run_tenants(seed, parts),
        None => s.run(seed),
    });

    let mut reports: Vec<ServingReport> = Vec::new();
    let mut prefix_lines: Vec<(&str, cimtpu_serving::PrefixStats)> = Vec::new();
    let mut failed = false;
    for (s, result) in scenarios.iter().zip(results) {
        match result {
            Ok(run) => {
                if run.prefix.lookups > 0 {
                    prefix_lines.push((s.name, run.prefix));
                }
                reports.push(run.report);
            }
            Err(e) => {
                eprintln!("{}: {e}", s.name);
                failed = true;
            }
        }
    }

    failed |= cli::emit_reports("serve_sim", &reports, flags.json.as_deref());
    // Prefix-sharing scenarios append their cache counters (absent when
    // sharing is off, keeping default output and the JSON shape
    // unchanged). CI greps this line for >= 1 hit on smoke-prefix.
    cli::emit_prefix_stats(&prefix_lines, flags.json.as_deref());
    if failed {
        std::process::exit(1);
    }
}
