//! Request-level serving simulation driver.
//!
//! ```text
//! serve_sim [--scenario NAME|all] [--seed N] [--workers N] [--json PATH]
//! ```
//!
//! Runs the named serving scenario (default: all headline scenarios) and
//! prints throughput, latency percentiles, energy per request, and
//! KV-cache pressure counters (preemptions, queue-full time, occupancy
//! high-water mark). Scenarios are independent, so they fan out over the
//! `cimtpu_bench::sweep` worker pool; `--workers N` overrides the
//! `CIMTPU_WORKERS` environment variable (see `cimtpu_bench::sweep`).
//! Output is deterministic for a fixed `--seed`.
//!
//! `--json PATH` additionally writes the full `ServingReport` list as
//! pretty-printed JSON (`-` writes JSON to stdout instead of the text
//! report). The committed `BENCH_serving.json` baseline is exactly
//! `serve_sim --json BENCH_serving.json`.

use cimtpu_bench::sweep;
use cimtpu_serving::scenario::{self, Scenario};
use cimtpu_serving::ServingReport;

struct Args {
    scenario: String,
    seed: Option<u64>,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { scenario: "all".to_owned(), seed: None, json: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => args.scenario = value("--scenario")?,
            "--seed" => {
                args.seed = Some(
                    value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?,
                );
            }
            "--workers" => {
                let n: usize =
                    value("--workers")?.parse().map_err(|e| format!("bad --workers: {e}"))?;
                // The sweep pool reads CIMTPU_WORKERS; the flag overrides it.
                std::env::set_var("CIMTPU_WORKERS", n.max(1).to_string());
            }
            "--json" => args.json = Some(value("--json")?),
            "--help" | "-h" => {
                println!(
                    "usage: serve_sim [--scenario NAME|all] [--seed N] [--workers N] [--json PATH]"
                );
                println!("scenarios:");
                for s in scenario::headline() {
                    println!("  {:<20} {}", s.name, s.description);
                }
                for s in [scenario::smoke(), scenario::smoke_kv()] {
                    println!("  {:<20} {}", s.name, s.description);
                }
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serve_sim: {e}");
            std::process::exit(2);
        }
    };

    let scenarios: Vec<Scenario> = if args.scenario == "all" {
        scenario::headline()
    } else {
        match scenario::by_name(&args.scenario) {
            Ok(s) => vec![s],
            Err(e) => {
                eprintln!("serve_sim: {e}");
                std::process::exit(2);
            }
        }
    };

    // Scenarios are independent simulations: fan them out over the sweep
    // worker pool (results return in scenario order, so output is stable).
    let seed = args.seed;
    let results = sweep::parallel_map(&scenarios, |s| s.run(seed));

    let mut reports: Vec<ServingReport> = Vec::new();
    let mut failed = false;
    for (s, result) in scenarios.iter().zip(results) {
        match result {
            Ok(run) => reports.push(run.report),
            Err(e) => {
                eprintln!("{}: {e}", s.name);
                failed = true;
            }
        }
    }

    let json = args.json.as_deref().map(|path| {
        (path, serde_json::to_string_pretty(&reports).expect("reports serialize"))
    });
    match json {
        Some(("-", payload)) => println!("{payload}"),
        Some((path, payload)) => {
            if let Err(e) = std::fs::write(path, payload + "\n") {
                eprintln!("serve_sim: writing {path}: {e}");
                failed = true;
            }
            for report in &reports {
                println!("{report}");
            }
        }
        None => {
            for report in &reports {
                println!("{report}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
