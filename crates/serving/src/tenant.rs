//! Multi-tenant SLO tiers: per-tenant traffic, weighted-fair scheduling
//! inputs, and the per-tenant report section.
//!
//! A [`TenantSet`] names each tenant, assigns it an [`SloClass`] (admission
//! priority + latency target), a fair-share weight, and its own
//! [`TrafficSpec`]. [`TenantSet::merged_spec`] materializes every tenant's
//! trace, interleaves the arrivals into one deterministic
//! [`ArrivalPattern::Trace`], and re-ids the merged sequence `0..n` — so
//! every existing driver replays a multi-tenant day through the exact same
//! event loop as a single-tenant one, with each [`Request`](crate::Request)
//! carrying its tenant index and class.
//!
//! Scheduling consumes a [`TenantSched`] (via
//! [`EngineCore::set_tenancy`](crate::EngineCore::set_tenancy)): admission
//! is priority-first (Interactive before Standard before Batch), then
//! deficit-weighted-fair across tenants (least service-per-weight first),
//! and KV preemption evicts batch-tier residents before interactive-tier
//! ones. Reporting consumes a [`TenantLedger`]: drivers tally per-tenant
//! shed/timeout/preemption counts and [`TenantLedger::report`] produces the
//! [`TenantReport`] section (goodput, SLO attainment, Jain's fairness index
//! over weighted service shares).

use serde::{Deserialize, Serialize};

use cimtpu_units::{Error, Result};

use crate::metrics::Completion;
use crate::request::{mix64, ArrivalPattern, PrefixTraffic, TrafficSpec};
use crate::trace::TraceRecord;

/// A request's service tier: its admission priority (Interactive first,
/// Batch last) and the latency target its tenant is judged against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloClass {
    /// Latency-sensitive traffic (chat turns): admitted first, preempted
    /// last.
    Interactive,
    /// Ordinary traffic with a moderate latency target.
    Standard,
    /// Throughput-oriented background work (evaluation sweeps, batch
    /// summarization): admitted last, and the first tier to lose its KV
    /// residency under memory pressure.
    Batch,
}

impl SloClass {
    /// Admission priority: lower ranks admit first and preempt last.
    pub fn rank(self) -> usize {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::Batch => 2,
        }
    }

    /// Default per-request latency target, in milliseconds, when a tenant
    /// spec does not override it.
    pub fn default_slo_ms(self) -> f64 {
        match self {
            SloClass::Interactive => 2.0,
            SloClass::Standard => 10.0,
            SloClass::Batch => 100.0,
        }
    }

    /// Stable lowercase name (CLI flags and report rows).
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }

    /// Parses a class from its [`name`](Self::name).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an unknown name.
    pub fn by_name(name: &str) -> Result<Self> {
        match name {
            "interactive" => Ok(SloClass::Interactive),
            "standard" => Ok(SloClass::Standard),
            "batch" => Ok(SloClass::Batch),
            other => Err(Error::invalid_config(format!(
                "unknown SLO class '{other}' (expected interactive, standard, or batch)"
            ))),
        }
    }
}

/// One tenant: a name, its service tier, its weighted fair share, its
/// latency target, and the traffic it offers.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Stable tenant name (report rows key on it).
    pub name: String,
    /// Service tier: admission priority and preemption ordering.
    pub class: SloClass,
    /// Fair-share weight for deficit-weighted-fair queueing (relative to
    /// the other tenants; must be positive and finite).
    pub weight: f64,
    /// Per-request latency target in milliseconds (SLO attainment counts
    /// completions at or under it).
    pub slo_ms: f64,
    /// The tenant's own traffic (open-loop shapes only: closed-loop
    /// arrivals couple to completions and cannot be merged up front).
    pub traffic: TrafficSpec,
}

impl TenantSpec {
    /// A tenant with the class's default latency target.
    pub fn new(name: &str, class: SloClass, weight: f64, traffic: TrafficSpec) -> Self {
        TenantSpec {
            name: name.to_owned(),
            class,
            weight,
            slo_ms: class.default_slo_ms(),
            traffic,
        }
    }
}

/// A set of tenants sharing one serving fleet.
#[derive(Debug, Clone)]
pub struct TenantSet {
    /// The tenants, in report order; tenant index `i` tags every request
    /// the `i`-th spec generates.
    pub tenants: Vec<TenantSpec>,
}

impl TenantSet {
    /// Builds and validates a tenant set.
    ///
    /// # Errors
    ///
    /// As for [`TenantSet::validate`].
    pub fn new(tenants: Vec<TenantSpec>) -> Result<Self> {
        let set = TenantSet { tenants };
        set.validate()?;
        Ok(set)
    }

    /// Checks the set is mergeable: at least one tenant, unique names,
    /// positive finite weights and SLO targets, per-tenant traffic that
    /// validates, no closed-loop tenants (their arrivals depend on service
    /// progress and cannot be merged up front), and no per-tenant prefix
    /// traffic (the merged trace re-ids requests, which would silently
    /// reshuffle shared-head group assignment).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        if self.tenants.is_empty() {
            return Err(Error::invalid_config("a tenant set needs >= 1 tenant"));
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if self.tenants[..i].iter().any(|o| o.name == t.name) {
                return Err(Error::invalid_config(format!(
                    "duplicate tenant name '{}'",
                    t.name
                )));
            }
            if !(t.weight.is_finite() && t.weight > 0.0) {
                return Err(Error::invalid_config(format!(
                    "tenant '{}' needs a positive finite weight",
                    t.name
                )));
            }
            if !(t.slo_ms.is_finite() && t.slo_ms > 0.0) {
                return Err(Error::invalid_config(format!(
                    "tenant '{}' needs a positive finite SLO target",
                    t.name
                )));
            }
            t.traffic.validate()?;
            if matches!(t.traffic.arrival, ArrivalPattern::ClosedLoop { .. }) {
                return Err(Error::invalid_config(format!(
                    "tenant '{}' uses closed-loop traffic, which cannot be merged \
                     into a trace (arrivals depend on service progress)",
                    t.name
                )));
            }
            if t.traffic.prefix != PrefixTraffic::None {
                return Err(Error::invalid_config(format!(
                    "tenant '{}' uses prefix traffic; the merged trace re-ids \
                     requests, so per-tenant prefix traffic is not supported",
                    t.name
                )));
            }
        }
        Ok(())
    }

    /// The same set with every tenant's traffic reseeded from `seed`
    /// (tenant `i` draws seed `mix64(seed, i)`), so scenario-level
    /// `--seed` reseeding perturbs every tenant's stream independently.
    #[must_use]
    pub fn with_seed(&self, seed: u64) -> TenantSet {
        let mut set = self.clone();
        for (i, t) in set.tenants.iter_mut().enumerate() {
            t.traffic.seed = mix64(seed, i as u64);
        }
        set
    }

    /// Materializes every tenant's trace and merges them into one
    /// deterministic [`ArrivalPattern::Trace`] spec: arrivals sort by time
    /// (ties keep tenant order, then per-tenant order), the merged
    /// sequence is re-id'd `0..n`, each record carries its tenant index
    /// and class, and sessions are salted per tenant so two tenants'
    /// session `k` never collide.
    ///
    /// # Errors
    ///
    /// As for [`TenantSet::validate`].
    pub fn merged_spec(&self) -> Result<TrafficSpec> {
        self.validate()?;
        let mut records: Vec<TraceRecord> = Vec::new();
        for (ti, tenant) in self.tenants.iter().enumerate() {
            let salt = 0x7E4A_4715 ^ ti as u64;
            records.extend(tenant.traffic.generate().into_iter().map(|r| TraceRecord {
                t_s: r.arrival_s,
                prompt: r.prompt_len,
                steps: r.steps,
                session: mix64(salt, r.session),
                tenant: ti as u32,
                class: tenant.class,
            }));
        }
        // Stable sort: equal arrival instants keep tenant order, and each
        // tenant's records are already in its own arrival order.
        records.sort_by(|a, b| a.t_s.total_cmp(&b.t_s));
        Ok(TrafficSpec {
            requests: records.len() as u64,
            arrival: ArrivalPattern::Trace { records },
            prompt: crate::LenDist::Fixed(0),
            steps: crate::LenDist::Fixed(1),
            prefix: PrefixTraffic::None,
            seed: 0,
        })
    }

    /// The scheduling view of the set: per-tenant classes and weights, by
    /// tenant index.
    pub fn sched(&self) -> TenantSched {
        TenantSched {
            classes: self.tenants.iter().map(|t| t.class).collect(),
            weights: self.tenants.iter().map(|t| t.weight).collect(),
        }
    }

    /// Splits an existing single-tenant traffic spec across `parts`
    /// tenants: each tenant inherits the base arrival shape with the
    /// request budget divided evenly (remainder to the earlier tenants)
    /// and open-loop/diurnal rates scaled by its share, seeded per tenant
    /// from the base seed. This is what `--tenants` applies to a
    /// scenario's existing traffic.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an empty part list, a base
    /// spec the set cannot merge (closed-loop or prefix traffic), or a
    /// budget smaller than the tenant count.
    pub fn overlay(base: &TrafficSpec, parts: &[TenantPart]) -> Result<TenantSet> {
        if parts.is_empty() {
            return Err(Error::invalid_config("tenant overlay needs >= 1 tenant"));
        }
        let n = parts.len() as u64;
        if base.requests < n {
            return Err(Error::invalid_config(format!(
                "cannot split {} requests across {n} tenants",
                base.requests
            )));
        }
        let share = 1.0 / n as f64;
        let tenants = parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let i = i as u64;
                let requests = base.requests / n + u64::from(i < base.requests % n);
                let arrival = match &base.arrival {
                    ArrivalPattern::OpenLoop { rate_rps } => {
                        ArrivalPattern::OpenLoop { rate_rps: rate_rps * share }
                    }
                    ArrivalPattern::OpenLoopSessions { rate_rps, sessions } => {
                        ArrivalPattern::OpenLoopSessions {
                            rate_rps: rate_rps * share,
                            sessions: *sessions,
                        }
                    }
                    ArrivalPattern::Diurnal { peak_rps, day_s, burst_x, bursts } => {
                        ArrivalPattern::Diurnal {
                            peak_rps: peak_rps * share,
                            day_s: *day_s,
                            burst_x: *burst_x,
                            bursts: *bursts,
                        }
                    }
                    other => other.clone(),
                };
                let traffic = TrafficSpec {
                    requests,
                    arrival,
                    prompt: base.prompt,
                    steps: base.steps,
                    prefix: base.prefix,
                    seed: mix64(base.seed, i),
                };
                TenantSpec {
                    name: p.name.clone(),
                    class: p.class,
                    weight: p.weight,
                    slo_ms: p.slo_ms.unwrap_or_else(|| p.class.default_slo_ms()),
                    traffic,
                }
            })
            .collect();
        TenantSet::new(tenants)
    }
}

/// One tenant of a `--tenants` flag: everything but the traffic, which the
/// overlay derives from the scenario's base spec.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPart {
    /// Tenant name.
    pub name: String,
    /// Service tier.
    pub class: SloClass,
    /// Fair-share weight.
    pub weight: f64,
    /// Latency target override (class default when absent).
    pub slo_ms: Option<f64>,
}

/// Parses a `--tenants` spec: comma-separated
/// `name=class[:weight[:slo_ms]]` entries, e.g.
/// `chat=interactive:3,bulk=batch:1:250`. Weight defaults to 1.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] describing the malformed entry.
pub fn parse_tenants(spec: &str) -> Result<Vec<TenantPart>> {
    let mut parts = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, rest) = entry.split_once('=').ok_or_else(|| {
            Error::invalid_config(format!(
                "tenant entry '{entry}' is not name=class[:weight[:slo_ms]]"
            ))
        })?;
        let mut fields = rest.split(':');
        let class = SloClass::by_name(fields.next().unwrap_or(""))?;
        let weight = match fields.next() {
            None => 1.0,
            Some(w) => w.parse::<f64>().map_err(|_| {
                Error::invalid_config(format!("tenant '{name}': bad weight '{w}'"))
            })?,
        };
        let slo_ms = match fields.next() {
            None => None,
            Some(s) => Some(s.parse::<f64>().map_err(|_| {
                Error::invalid_config(format!("tenant '{name}': bad slo_ms '{s}'"))
            })?),
        };
        if let Some(extra) = fields.next() {
            return Err(Error::invalid_config(format!(
                "tenant '{name}': unexpected trailing field '{extra}'"
            )));
        }
        parts.push(TenantPart { name: name.trim().to_owned(), class, weight, slo_ms });
    }
    if parts.is_empty() {
        return Err(Error::invalid_config("empty --tenants spec"));
    }
    Ok(parts)
}

/// The scheduler's view of a tenant set: per-tenant class and weight, by
/// tenant index (what [`EngineCore::set_tenancy`](crate::EngineCore::set_tenancy)
/// consumes).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSched {
    /// Per-tenant service tier.
    pub classes: Vec<SloClass>,
    /// Per-tenant fair-share weight (positive, finite).
    pub weights: Vec<f64>,
}

/// One tenant's row of the per-tenant report section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantUsage {
    /// Tenant name.
    pub name: String,
    /// Service tier.
    pub class: SloClass,
    /// Fair-share weight.
    pub weight: f64,
    /// Requests the tenant offered.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed (retry budget exhausted under faults).
    pub shed: u64,
    /// Requests timed out past their retry deadline.
    pub timed_out: u64,
    /// KV preemptions suffered by the tenant's residents.
    pub preemptions: u64,
    /// Completions meeting the tenant's latency target, per second of
    /// fleet makespan.
    pub goodput_rps: f64,
    /// Fraction of completions at or under the tenant's `slo_ms` target
    /// (1.0 when nothing completed).
    pub slo_attainment: f64,
    /// The tenant's fraction of all generated tokens (service share).
    pub service_share: f64,
}

/// The per-tenant report section: Jain's fairness index over weighted
/// service shares plus one row per tenant. Serialized only when a run is
/// multi-tenant, so single-tenant reports stay byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Jain's fairness index over per-tenant service per unit weight:
    /// `(Σx)² / (n·Σx²)` with `x_i = tokens_i / weight_i`; 1.0 means every
    /// tenant received service exactly proportional to its weight (and
    /// vacuously when nothing was served).
    pub fairness: f64,
    /// Per-tenant rows, in tenant-set order.
    pub tenants: Vec<TenantUsage>,
}

impl std::fmt::Display for TenantReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "tenants     fairness (Jain) {:.4}", self.fairness)?;
        for u in &self.tenants {
            writeln!(
                f,
                "  {:<12} {:<11} {}/{} done ({} shed, {} timed out), \
                 goodput {:.2} req/s, SLO {:.3}, share {:.3}, {} preemption(s)",
                u.name,
                u.class.name(),
                u.completed,
                u.offered,
                u.shed,
                u.timed_out,
                u.goodput_rps,
                u.slo_attainment,
                u.service_share,
                u.preemptions,
            )?;
        }
        Ok(())
    }
}

/// Driver-side per-tenant bookkeeping: maps request ids back to tenants
/// (via the merged trace) and tallies the outcomes only the driver sees
/// (shed, timed out, preempted).
#[derive(Debug, Clone)]
pub struct TenantLedger {
    names: Vec<String>,
    classes: Vec<SloClass>,
    weights: Vec<f64>,
    slo_ms: Vec<f64>,
    /// Tenant of request `id` (ids are `0..n` in merged-trace order).
    tenant_of: Vec<u32>,
    shed: Vec<u64>,
    timed_out: Vec<u64>,
    preempted: Vec<u64>,
}

impl TenantLedger {
    /// Opens a ledger for `set` against its merged spec (the id → tenant
    /// map comes from the spec's trace records).
    ///
    /// # Panics
    ///
    /// Panics if `spec` is not a trace spec (it must come from
    /// [`TenantSet::merged_spec`]).
    pub fn new(set: &TenantSet, spec: &TrafficSpec) -> Self {
        let ArrivalPattern::Trace { records } = &spec.arrival else {
            panic!("a tenant ledger needs the merged trace spec")
        };
        let n = set.tenants.len();
        TenantLedger {
            names: set.tenants.iter().map(|t| t.name.clone()).collect(),
            classes: set.tenants.iter().map(|t| t.class).collect(),
            weights: set.tenants.iter().map(|t| t.weight).collect(),
            slo_ms: set.tenants.iter().map(|t| t.slo_ms).collect(),
            tenant_of: records.iter().map(|r| r.tenant).collect(),
            shed: vec![0; n],
            timed_out: vec![0; n],
            preempted: vec![0; n],
        }
    }

    /// Tenant index of request `id`.
    pub fn tenant_of(&self, id: u64) -> usize {
        self.tenant_of[id as usize] as usize
    }

    /// Records a shed request.
    pub fn on_shed(&mut self, id: u64) {
        let t = self.tenant_of(id);
        self.shed[t] += 1;
    }

    /// Records a timed-out request.
    pub fn on_timeout(&mut self, id: u64) {
        let t = self.tenant_of(id);
        self.timed_out[t] += 1;
    }

    /// Adds `n` preemptions suffered by `tenant`.
    pub fn add_preemptions(&mut self, tenant: usize, n: u64) {
        self.preempted[tenant] += n;
    }

    /// Folds a core's per-tenant preemption counters in.
    pub fn absorb_preemptions(&mut self, per_tenant: &[u64]) {
        for (t, &n) in per_tenant.iter().enumerate() {
            self.preempted[t] += n;
        }
    }

    /// Builds the per-tenant report section from the fleet's completions.
    pub fn report(&self, completions: &[Completion], makespan_s: f64) -> TenantReport {
        let n = self.names.len();
        let mut completed = vec![0u64; n];
        let mut met = vec![0u64; n];
        let mut tokens = vec![0u64; n];
        for c in completions {
            let t = self.tenant_of(c.id);
            completed[t] += 1;
            tokens[t] += c.steps;
            if c.latency().get() * 1e3 <= self.slo_ms[t] {
                met[t] += 1;
            }
        }
        let mut offered = vec![0u64; n];
        for &t in &self.tenant_of {
            offered[t as usize] += 1;
        }
        let total_tokens: u64 = tokens.iter().sum();
        let makespan = makespan_s.max(f64::MIN_POSITIVE);
        let tenants = (0..n)
            .map(|t| TenantUsage {
                name: self.names[t].clone(),
                class: self.classes[t],
                weight: self.weights[t],
                offered: offered[t],
                completed: completed[t],
                shed: self.shed[t],
                timed_out: self.timed_out[t],
                preemptions: self.preempted[t],
                goodput_rps: met[t] as f64 / makespan,
                slo_attainment: if completed[t] == 0 {
                    1.0
                } else {
                    met[t] as f64 / completed[t] as f64
                },
                service_share: if total_tokens == 0 {
                    0.0
                } else {
                    tokens[t] as f64 / total_tokens as f64
                },
            })
            .collect();
        let shares: Vec<f64> =
            (0..n).map(|t| tokens[t] as f64 / self.weights[t]).collect();
        TenantReport { fairness: jain(&shares), tenants }
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`: 1.0 for perfectly even
/// allocations (and vacuously for an all-zero or empty one), approaching
/// `1/n` as one participant monopolizes.
pub fn jain(shares: &[f64]) -> f64 {
    let sum: f64 = shares.iter().sum();
    let sq: f64 = shares.iter().map(|x| x * x).sum();
    if sq == 0.0 || shares.is_empty() {
        return 1.0;
    }
    sum * sum / (shares.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LenDist;

    fn traffic(requests: u64, rate: f64, steps: u64, seed: u64) -> TrafficSpec {
        TrafficSpec {
            requests,
            arrival: ArrivalPattern::OpenLoop { rate_rps: rate },
            prompt: LenDist::Fixed(16),
            steps: LenDist::Fixed(steps),
            prefix: PrefixTraffic::None,
            seed,
        }
    }

    fn two_tenants() -> TenantSet {
        TenantSet::new(vec![
            TenantSpec::new("chat", SloClass::Interactive, 1.0, traffic(6, 100.0, 4, 1)),
            TenantSpec::new("bulk", SloClass::Batch, 1.0, traffic(3, 50.0, 8, 2)),
        ])
        .unwrap()
    }

    #[test]
    fn merged_spec_interleaves_sorts_and_reids() {
        let spec = two_tenants().merged_spec().unwrap();
        assert_eq!(spec.requests, 9);
        let reqs = spec.generate();
        assert!(reqs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(reqs.iter().enumerate().all(|(i, r)| r.id == i as u64));
        assert_eq!(reqs.iter().filter(|r| r.tenant == 0).count(), 6);
        assert_eq!(reqs.iter().filter(|r| r.tenant == 1).count(), 3);
        assert!(reqs
            .iter()
            .all(|r| (r.tenant == 0) == (r.class == SloClass::Interactive)));
        // Sessions are salted per tenant: no collisions across tenants.
        let s0: Vec<u64> =
            reqs.iter().filter(|r| r.tenant == 0).map(|r| r.session).collect();
        assert!(reqs
            .iter()
            .filter(|r| r.tenant == 1)
            .all(|r| !s0.contains(&r.session)));
        // Merging is deterministic.
        assert_eq!(spec.generate(), two_tenants().merged_spec().unwrap().generate());
    }

    #[test]
    fn with_seed_reseeds_every_tenant() {
        let a = two_tenants().with_seed(7);
        let b = two_tenants().with_seed(7);
        let c = two_tenants().with_seed(8);
        assert_eq!(
            a.merged_spec().unwrap().generate(),
            b.merged_spec().unwrap().generate()
        );
        assert_ne!(
            a.merged_spec().unwrap().generate(),
            c.merged_spec().unwrap().generate()
        );
        assert_ne!(a.tenants[0].traffic.seed, a.tenants[1].traffic.seed);
    }

    #[test]
    fn validation_rejects_bad_sets() {
        assert!(TenantSet::new(vec![]).is_err());
        let t = |name: &str| TenantSpec::new(name, SloClass::Standard, 1.0, traffic(2, 10.0, 4, 1));
        assert!(TenantSet::new(vec![t("a"), t("a")]).is_err());
        let mut neg = t("a");
        neg.weight = -1.0;
        assert!(TenantSet::new(vec![neg]).is_err());
        let mut closed = t("a");
        closed.traffic.arrival = ArrivalPattern::ClosedLoop { clients: 1, think_ms: 1.0 };
        assert!(TenantSet::new(vec![closed]).is_err());
        let mut prefixed = t("a");
        prefixed.traffic.prefix = PrefixTraffic::SharedHead { tokens: 8, groups: 2 };
        assert!(TenantSet::new(vec![prefixed]).is_err());
    }

    #[test]
    fn parse_tenants_grammar() {
        let parts = parse_tenants("chat=interactive:3,bulk=batch:1:250").unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].name, "chat");
        assert_eq!(parts[0].class, SloClass::Interactive);
        assert_eq!(parts[0].weight, 3.0);
        assert_eq!(parts[0].slo_ms, None);
        assert_eq!(parts[1].class, SloClass::Batch);
        assert_eq!(parts[1].slo_ms, Some(250.0));
        assert_eq!(
            parse_tenants("solo=standard").unwrap()[0],
            TenantPart {
                name: "solo".into(),
                class: SloClass::Standard,
                weight: 1.0,
                slo_ms: None
            }
        );
        assert!(parse_tenants("").is_err());
        assert!(parse_tenants("noclass").is_err());
        assert!(parse_tenants("a=warp").is_err());
        assert!(parse_tenants("a=batch:x").is_err());
        assert!(parse_tenants("a=batch:1:2:3").is_err());
    }

    #[test]
    fn overlay_splits_budget_and_rate() {
        let base = traffic(7, 100.0, 4, 9);
        let parts = parse_tenants("a=interactive:2,b=batch").unwrap();
        let set = TenantSet::overlay(&base, &parts).unwrap();
        assert_eq!(set.tenants[0].traffic.requests, 4);
        assert_eq!(set.tenants[1].traffic.requests, 3);
        for t in &set.tenants {
            let ArrivalPattern::OpenLoop { rate_rps } = t.traffic.arrival else {
                panic!("overlay keeps the open-loop shape")
            };
            assert!((rate_rps - 50.0).abs() < 1e-12);
        }
        assert_ne!(set.tenants[0].traffic.seed, set.tenants[1].traffic.seed);
        assert!(TenantSet::overlay(&traffic(1, 1.0, 1, 0), &parts).is_err());
    }

    #[test]
    fn ledger_reports_conservation_and_fairness() {
        let set = two_tenants();
        let spec = set.merged_spec().unwrap();
        let mut ledger = TenantLedger::new(&set, &spec);
        let reqs = spec.generate();
        // Complete everything instantly: full attainment, shares ∝ tokens.
        let completions: Vec<Completion> = reqs
            .iter()
            .map(|r| Completion {
                id: r.id,
                arrival: r.arrival(),
                first_token: r.arrival(),
                finish: r.arrival(),
                steps: r.steps,
            })
            .collect();
        ledger.add_preemptions(1, 2);
        let report = ledger.report(&completions, 1.0);
        assert_eq!(report.tenants.len(), 2);
        for row in &report.tenants {
            assert_eq!(row.offered, row.completed + row.shed + row.timed_out);
            assert_eq!(row.slo_attainment, 1.0);
        }
        assert_eq!(report.tenants[1].preemptions, 2);
        // 6×4 = 24 tokens vs 3×8 = 24 tokens at equal weights: perfectly
        // fair.
        assert!((report.fairness - 1.0).abs() < 1e-12);
        let share: f64 = report.tenants.iter().map(|t| t.service_share).sum();
        assert!((share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
        assert!((jain(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((jain(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert!(jain(&[5.0, 1.0]) < 1.0);
    }
}
