//! Paged block allocation over a fixed KV byte budget.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use cimtpu_units::{Bytes, Error, Result};

use crate::footprint::KvFootprint;

/// Where a chip's KV byte budget comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvBudget {
    /// No capacity limit: every reservation succeeds (the pre-PR-3
    /// serving behaviour; occupancy is still tracked for reporting).
    Unlimited,
    /// An explicit per-chip KV byte budget.
    Bytes(Bytes),
    /// The chip's HBM capacity minus the resident model weights (per
    /// tensor-parallel shard) — what a real server actually has left.
    HbmMinusWeights,
}

impl KvBudget {
    /// Resolves the budget to a concrete byte cap (`None` = unlimited)
    /// given the chip's HBM capacity and the hosted model's footprint.
    pub fn resolve(&self, hbm_capacity: Bytes, footprint: &KvFootprint) -> Option<Bytes> {
        match *self {
            KvBudget::Unlimited => None,
            KvBudget::Bytes(b) => Some(b),
            KvBudget::HbmMinusWeights => {
                Some(hbm_capacity.saturating_sub(footprint.weight_bytes()))
            }
        }
    }
}

/// A vLLM-style paged KV-cache allocator: the budget is carved into
/// fixed-size blocks of `block_tokens` tokens, and a request holding `t`
/// tokens occupies `⌈t / block_tokens⌉` blocks.
///
/// The allocator tracks per-request holdings by id, total occupancy, and
/// the occupancy high-water mark. All operations are integer bookkeeping —
/// no floats — so scheduling decisions built on it are exactly
/// reproducible.
#[derive(Debug, Clone)]
pub struct PagedKvAllocator {
    block_tokens: u64,
    /// `None` = unlimited (reservations never fail).
    capacity_blocks: Option<u64>,
    /// Blocks held per request id.
    held: HashMap<u64, u64>,
    used_blocks: u64,
    high_water_blocks: u64,
}

impl PagedKvAllocator {
    /// An allocator of `capacity_blocks` blocks of `block_tokens` tokens.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero `block_tokens`.
    pub fn new(block_tokens: u64, capacity_blocks: u64) -> Result<Self> {
        if block_tokens == 0 {
            return Err(Error::invalid_config("KV block size must be >= 1 token"));
        }
        Ok(PagedKvAllocator {
            block_tokens,
            capacity_blocks: Some(capacity_blocks),
            held: HashMap::new(),
            used_blocks: 0,
            high_water_blocks: 0,
        })
    }

    /// An allocator with no capacity limit (occupancy still tracked).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero `block_tokens`.
    pub fn unlimited(block_tokens: u64) -> Result<Self> {
        let mut alloc = Self::new(block_tokens, 0)?;
        alloc.capacity_blocks = None;
        Ok(alloc)
    }

    /// Builds an allocator over `budget` bytes (`None` = unlimited) for a
    /// model of the given per-token footprint. A zero footprint (DiT) is
    /// never capacity-limited regardless of the budget.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero `block_tokens`.
    pub fn from_budget(
        budget: Option<Bytes>,
        footprint: &KvFootprint,
        block_tokens: u64,
    ) -> Result<Self> {
        match budget {
            None => Self::unlimited(block_tokens),
            Some(bytes) => {
                let block_bytes = footprint.bytes_per_token().get() * block_tokens;
                if block_bytes == 0 {
                    return Self::unlimited(block_tokens);
                }
                Self::new(block_tokens, bytes.get() / block_bytes)
            }
        }
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> u64 {
        self.block_tokens
    }

    /// Total blocks (`None` = unlimited).
    pub fn capacity_blocks(&self) -> Option<u64> {
        self.capacity_blocks
    }

    /// Blocks currently allocated.
    pub fn used_blocks(&self) -> u64 {
        self.used_blocks
    }

    /// Blocks still free (`None` = unlimited).
    pub fn free_blocks(&self) -> Option<u64> {
        self.capacity_blocks.map(|c| c - self.used_blocks)
    }

    /// The most blocks ever allocated at once.
    pub fn high_water_blocks(&self) -> u64 {
        self.high_water_blocks
    }

    /// High-water occupancy as a fraction of capacity (0 when unlimited
    /// or zero-capacity).
    pub fn high_water_frac(&self) -> f64 {
        match self.capacity_blocks {
            Some(c) if c > 0 => self.high_water_blocks as f64 / c as f64,
            _ => 0.0,
        }
    }

    /// Blocks needed to hold `tokens` tokens.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_tokens)
    }

    /// Whether growing request `id` to `tokens` tokens would fit.
    pub fn would_fit(&self, id: u64, tokens: u64) -> bool {
        let need = self.blocks_for(tokens);
        let have = self.held.get(&id).copied().unwrap_or(0);
        let extra = need.saturating_sub(have);
        match self.capacity_blocks {
            None => true,
            Some(c) => self.used_blocks + extra <= c,
        }
    }

    /// Ensures request `id` holds enough blocks for `tokens` tokens,
    /// allocating the difference. Returns `false` (allocating nothing) if
    /// the extra blocks do not fit; a request never shrinks here — blocks
    /// are returned only by [`release`](Self::release).
    pub fn try_grow(&mut self, id: u64, tokens: u64) -> bool {
        if !self.would_fit(id, tokens) {
            return false;
        }
        let need = self.blocks_for(tokens);
        let have = self.held.entry(id).or_insert(0);
        if need > *have {
            self.used_blocks += need - *have;
            *have = need;
            self.high_water_blocks = self.high_water_blocks.max(self.used_blocks);
        }
        true
    }

    /// Frees everything request `id` holds, returning the block count.
    pub fn release(&mut self, id: u64) -> u64 {
        let freed = self.held.remove(&id).unwrap_or(0);
        self.used_blocks -= freed;
        freed
    }

    /// Blocks request `id` currently holds.
    pub fn held_blocks(&self, id: u64) -> u64 {
        self.held.get(&id).copied().unwrap_or(0)
    }

    /// Number of requests holding at least one block.
    pub fn holders(&self) -> usize {
        self.held.values().filter(|&&b| b > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_block_size() {
        assert!(PagedKvAllocator::new(0, 8).is_err());
        assert!(PagedKvAllocator::unlimited(0).is_err());
    }

    #[test]
    fn grow_release_roundtrip() {
        let mut a = PagedKvAllocator::new(16, 4).unwrap();
        assert!(a.try_grow(7, 32)); // 2 blocks
        assert_eq!(a.used_blocks(), 2);
        assert!(a.try_grow(7, 33)); // 3 blocks (grow by 1)
        assert_eq!(a.held_blocks(7), 3);
        assert!(a.try_grow(7, 16)); // never shrinks
        assert_eq!(a.held_blocks(7), 3);
        assert!(!a.try_grow(8, 32)); // 2 more do not fit in 1 free
        assert_eq!(a.used_blocks(), 3, "failed grow must allocate nothing");
        assert!(a.try_grow(8, 16));
        assert_eq!(a.free_blocks(), Some(0));
        assert_eq!(a.release(7), 3);
        assert_eq!(a.release(7), 0, "double release is a no-op");
        assert_eq!(a.used_blocks(), 1);
        assert_eq!(a.high_water_blocks(), 4);
        assert_eq!(a.high_water_frac(), 1.0);
    }

    #[test]
    fn unlimited_never_fails_but_tracks() {
        let mut a = PagedKvAllocator::unlimited(16).unwrap();
        assert!(a.try_grow(0, 1 << 20));
        assert_eq!(a.capacity_blocks(), None);
        assert_eq!(a.free_blocks(), None);
        assert_eq!(a.used_blocks(), (1 << 20) / 16);
        assert_eq!(a.high_water_frac(), 0.0);
    }

    #[test]
    fn budget_derivation() {
        use cimtpu_models::TransformerConfig;
        let model = TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap();
        let fp = crate::KvFootprint::of(&model); // 1024 B/token
        let a = PagedKvAllocator::from_budget(Some(Bytes::from_kib(64)), &fp, 16).unwrap();
        assert_eq!(a.capacity_blocks(), Some(4));
        let unlimited = PagedKvAllocator::from_budget(None, &fp, 16).unwrap();
        assert_eq!(unlimited.capacity_blocks(), None);
        // Zero footprint (DiT): never limited.
        let dit =
            PagedKvAllocator::from_budget(Some(Bytes::new(1)), &crate::KvFootprint::none(), 16)
                .unwrap();
        assert_eq!(dit.capacity_blocks(), None);
    }

    #[test]
    fn budget_resolution() {
        use cimtpu_models::TransformerConfig;
        let model = TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap();
        let fp = crate::KvFootprint::of(&model);
        let hbm = Bytes::from_mib(8);
        assert_eq!(KvBudget::Unlimited.resolve(hbm, &fp), None);
        assert_eq!(
            KvBudget::Bytes(Bytes::from_kib(64)).resolve(hbm, &fp),
            Some(Bytes::from_kib(64))
        );
        let left = KvBudget::HbmMinusWeights.resolve(hbm, &fp).unwrap();
        assert_eq!(left, hbm.saturating_sub(fp.weight_bytes()));
    }
}
