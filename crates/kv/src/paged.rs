//! Paged block allocation over a fixed KV byte budget.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use cimtpu_units::{Bytes, Error, Result};

use crate::footprint::KvFootprint;

/// Where a chip's KV byte budget comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvBudget {
    /// No capacity limit: every reservation succeeds (the pre-PR-3
    /// serving behaviour; occupancy is still tracked for reporting).
    Unlimited,
    /// An explicit per-chip KV byte budget.
    Bytes(Bytes),
    /// The chip's HBM capacity minus the resident model weights (per
    /// tensor-parallel shard) — what a real server actually has left.
    HbmMinusWeights,
}

impl KvBudget {
    /// Resolves the budget to a concrete byte cap (`None` = unlimited)
    /// given the chip's HBM capacity and the hosted model's footprint.
    pub fn resolve(&self, hbm_capacity: Bytes, footprint: &KvFootprint) -> Option<Bytes> {
        match *self {
            KvBudget::Unlimited => None,
            KvBudget::Bytes(b) => Some(b),
            KvBudget::HbmMinusWeights => {
                Some(hbm_capacity.saturating_sub(footprint.weight_bytes()))
            }
        }
    }
}

/// A vLLM-style paged KV-cache allocator: the budget is carved into
/// fixed-size blocks of `block_tokens` tokens, and a request holding `t`
/// tokens occupies `⌈t / block_tokens⌉` blocks.
///
/// The allocator tracks per-request holdings by id, total occupancy, and
/// the occupancy high-water mark. All operations are integer bookkeeping —
/// no floats — so scheduling decisions built on it are exactly
/// reproducible.
///
/// # Shared blocks
///
/// For prefix sharing a request's holding splits into **private** blocks
/// (counted, anonymous — the pre-sharing model) and references to
/// **shared** blocks, which carry an identity ([`alloc_shared`] /
/// [`promote_to_shared`]) and a reference count. A shared block occupies
/// one physical block however many holders reference it; it is freed only
/// when the last reference drops ([`release_shared`]). The ref-count
/// invariants live with the prefix index in [`crate::prefix`]; the
/// allocator only guarantees that occupancy counts every physical block
/// exactly once and that no shared block is freed while referenced.
///
/// [`alloc_shared`]: PagedKvAllocator::alloc_shared
/// [`promote_to_shared`]: PagedKvAllocator::promote_to_shared
/// [`release_shared`]: PagedKvAllocator::release_shared
#[derive(Debug, Clone)]
pub struct PagedKvAllocator {
    block_tokens: u64,
    /// `None` = unlimited (reservations never fail).
    capacity_blocks: Option<u64>,
    /// Blocks held per request id.
    held: HashMap<u64, Holding>,
    /// Reference count per live shared block id.
    shared: HashMap<u64, u64>,
    next_shared: u64,
    used_blocks: u64,
    high_water_blocks: u64,
}

/// One request's holding: anonymous private blocks plus references to
/// identified shared blocks. Together they must cover the request's token
/// count (`shared.len() + private >= blocks_for(tokens)`).
#[derive(Debug, Clone, Default)]
struct Holding {
    shared: Vec<u64>,
    private: u64,
}

impl Holding {
    fn blocks(&self) -> u64 {
        self.shared.len() as u64 + self.private
    }
}

impl PagedKvAllocator {
    /// An allocator of `capacity_blocks` blocks of `block_tokens` tokens.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero `block_tokens`.
    pub fn new(block_tokens: u64, capacity_blocks: u64) -> Result<Self> {
        if block_tokens == 0 {
            return Err(Error::invalid_config("KV block size must be >= 1 token"));
        }
        Ok(PagedKvAllocator {
            block_tokens,
            capacity_blocks: Some(capacity_blocks),
            held: HashMap::new(),
            shared: HashMap::new(),
            next_shared: 0,
            used_blocks: 0,
            high_water_blocks: 0,
        })
    }

    /// An allocator with no capacity limit (occupancy still tracked).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero `block_tokens`.
    pub fn unlimited(block_tokens: u64) -> Result<Self> {
        let mut alloc = Self::new(block_tokens, 0)?;
        alloc.capacity_blocks = None;
        Ok(alloc)
    }

    /// Builds an allocator over `budget` bytes (`None` = unlimited) for a
    /// model of the given per-token footprint. A zero footprint (DiT) is
    /// never capacity-limited regardless of the budget.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero `block_tokens`.
    pub fn from_budget(
        budget: Option<Bytes>,
        footprint: &KvFootprint,
        block_tokens: u64,
    ) -> Result<Self> {
        match budget {
            None => Self::unlimited(block_tokens),
            Some(bytes) => {
                let block_bytes = footprint.bytes_per_token().get() * block_tokens;
                if block_bytes == 0 {
                    return Self::unlimited(block_tokens);
                }
                Self::new(block_tokens, bytes.get() / block_bytes)
            }
        }
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> u64 {
        self.block_tokens
    }

    /// Total blocks (`None` = unlimited).
    pub fn capacity_blocks(&self) -> Option<u64> {
        self.capacity_blocks
    }

    /// Blocks currently allocated.
    pub fn used_blocks(&self) -> u64 {
        self.used_blocks
    }

    /// Blocks still free (`None` = unlimited).
    pub fn free_blocks(&self) -> Option<u64> {
        self.capacity_blocks.map(|c| c - self.used_blocks)
    }

    /// The most blocks ever allocated at once.
    pub fn high_water_blocks(&self) -> u64 {
        self.high_water_blocks
    }

    /// High-water occupancy as a fraction of capacity (0 when unlimited
    /// or zero-capacity).
    pub fn high_water_frac(&self) -> f64 {
        match self.capacity_blocks {
            Some(c) if c > 0 => self.high_water_blocks as f64 / c as f64,
            _ => 0.0,
        }
    }

    /// Blocks needed to hold `tokens` tokens.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_tokens)
    }

    /// Whether growing request `id` to `tokens` tokens would fit.
    pub fn would_fit(&self, id: u64, tokens: u64) -> bool {
        let need = self.blocks_for(tokens);
        let have = self.held.get(&id).map_or(0, Holding::blocks);
        let extra = need.saturating_sub(have);
        match self.capacity_blocks {
            None => true,
            Some(c) => self.used_blocks + extra <= c,
        }
    }

    /// Ensures request `id` holds enough blocks for `tokens` tokens
    /// (shared references count toward coverage), allocating the
    /// difference as private blocks. Returns `false` (allocating nothing)
    /// if the extra blocks do not fit; a request never shrinks here —
    /// blocks are returned only by [`release`](Self::release).
    pub fn try_grow(&mut self, id: u64, tokens: u64) -> bool {
        if !self.would_fit(id, tokens) {
            return false;
        }
        let need = self.blocks_for(tokens);
        let have = self.held.entry(id).or_default();
        if need > have.blocks() {
            let extra = need - have.blocks();
            self.used_blocks += extra;
            have.private += extra;
            self.high_water_blocks = self.high_water_blocks.max(self.used_blocks);
        }
        true
    }

    /// Frees everything request `id` holds — private blocks outright,
    /// shared blocks by dropping one reference each — and returns the
    /// number of physical blocks actually freed (a shared block frees only
    /// when `id` held its last reference).
    pub fn release(&mut self, id: u64) -> u64 {
        let Some(holding) = self.held.remove(&id) else { return 0 };
        let mut freed = holding.private;
        self.used_blocks -= holding.private;
        for block in holding.shared {
            if self.release_shared(block) {
                freed += 1;
            }
        }
        freed
    }

    /// Frees every holding and every shared block at once — the "replica
    /// died" path. A crash loses the HBM contents wholesale, so there is
    /// no per-request teardown to respect: all private blocks, all shared
    /// prefix blocks, and all references vanish together. Returns the
    /// number of physical blocks freed. High-water statistics survive the
    /// reset (they describe the incarnation that just died) and shared
    /// block ids are never reused across it.
    pub fn release_all(&mut self) -> u64 {
        let freed = self.used_blocks;
        self.held.clear();
        self.shared.clear();
        self.used_blocks = 0;
        freed
    }

    /// Blocks request `id` currently holds (private + shared references).
    pub fn held_blocks(&self, id: u64) -> u64 {
        self.held.get(&id).map_or(0, Holding::blocks)
    }

    /// Number of requests holding at least one block (or shared
    /// reference).
    pub fn holders(&self) -> usize {
        self.held.values().filter(|h| h.blocks() > 0).count()
    }

    /// Allocates a fresh shared block with one reference (the caller's —
    /// typically a prefix index retaining a copy-on-write tail copy).
    /// Returns `None` without allocating if no block is free.
    pub fn alloc_shared(&mut self) -> Option<u64> {
        if let Some(c) = self.capacity_blocks {
            if self.used_blocks >= c {
                return None;
            }
        }
        let block = self.next_shared;
        self.next_shared += 1;
        self.shared.insert(block, 1);
        self.used_blocks += 1;
        self.high_water_blocks = self.high_water_blocks.max(self.used_blocks);
        Some(block)
    }

    /// Converts one of request `id`'s private blocks into a shared block
    /// referenced by both the request and the caller (reference count 2) —
    /// how a prompt block enters a prefix index without copying. Returns
    /// `None` if the request holds no private block. Occupancy is
    /// unchanged: the same physical block, now identified.
    pub fn promote_to_shared(&mut self, id: u64) -> Option<u64> {
        let holding = self.held.get_mut(&id)?;
        if holding.private == 0 {
            return None;
        }
        holding.private -= 1;
        let block = self.next_shared;
        self.next_shared += 1;
        holding.shared.push(block);
        self.shared.insert(block, 2);
        Some(block)
    }

    /// Adds one reference to shared block `block`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the block is not live.
    pub fn retain_shared(&mut self, block: u64) {
        let refs = self.shared.get_mut(&block);
        debug_assert!(refs.is_some(), "retain of a dead shared block");
        if let Some(refs) = refs {
            *refs += 1;
        }
    }

    /// Drops one reference from shared block `block`, freeing the
    /// physical block when the count reaches zero. Returns whether the
    /// block was freed. A block referenced by anyone else survives — the
    /// "never free while shared" invariant.
    pub fn release_shared(&mut self, block: u64) -> bool {
        let Some(refs) = self.shared.get_mut(&block) else {
            debug_assert!(false, "release of a dead shared block");
            return false;
        };
        *refs -= 1;
        if *refs == 0 {
            self.shared.remove(&block);
            self.used_blocks -= 1;
            true
        } else {
            false
        }
    }

    /// Reference count of shared block `block` (0 if not live).
    pub fn shared_refs(&self, block: u64) -> u64 {
        self.shared.get(&block).copied().unwrap_or(0)
    }

    /// Live shared blocks (each counted once, whatever its refs).
    pub fn shared_blocks(&self) -> u64 {
        self.shared.len() as u64
    }

    /// Shared-block references request `id` holds.
    pub fn shared_held(&self, id: u64) -> u64 {
        self.held.get(&id).map_or(0, |h| h.shared.len() as u64)
    }

    /// Atomically attaches the given shared blocks to request `id` (one
    /// reference each — capacity-free, the blocks are already resident)
    /// and allocates whatever private blocks are still needed to cover
    /// `tokens` tokens. On failure nothing changes: no references taken,
    /// no blocks allocated. The request must hold nothing beforehand
    /// (admission happens once per residency).
    pub fn try_admit(&mut self, id: u64, shared: &[u64], tokens: u64) -> bool {
        debug_assert_eq!(self.held_blocks(id), 0, "admission of a request already holding");
        let need = self.blocks_for(tokens);
        let extra = need.saturating_sub(shared.len() as u64);
        if let Some(c) = self.capacity_blocks {
            if self.used_blocks + extra > c {
                return false;
            }
        }
        for &block in shared {
            self.retain_shared(block);
        }
        let holding = self.held.entry(id).or_default();
        holding.shared.extend_from_slice(shared);
        holding.private += extra;
        self.used_blocks += extra;
        self.high_water_blocks = self.high_water_blocks.max(self.used_blocks);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_block_size() {
        assert!(PagedKvAllocator::new(0, 8).is_err());
        assert!(PagedKvAllocator::unlimited(0).is_err());
    }

    #[test]
    fn grow_release_roundtrip() {
        let mut a = PagedKvAllocator::new(16, 4).unwrap();
        assert!(a.try_grow(7, 32)); // 2 blocks
        assert_eq!(a.used_blocks(), 2);
        assert!(a.try_grow(7, 33)); // 3 blocks (grow by 1)
        assert_eq!(a.held_blocks(7), 3);
        assert!(a.try_grow(7, 16)); // never shrinks
        assert_eq!(a.held_blocks(7), 3);
        assert!(!a.try_grow(8, 32)); // 2 more do not fit in 1 free
        assert_eq!(a.used_blocks(), 3, "failed grow must allocate nothing");
        assert!(a.try_grow(8, 16));
        assert_eq!(a.free_blocks(), Some(0));
        assert_eq!(a.release(7), 3);
        assert_eq!(a.release(7), 0, "double release is a no-op");
        assert_eq!(a.used_blocks(), 1);
        assert_eq!(a.high_water_blocks(), 4);
        assert_eq!(a.high_water_frac(), 1.0);
    }

    #[test]
    fn release_all_frees_private_and_shared_but_keeps_high_water() {
        let mut a = PagedKvAllocator::new(16, 8).unwrap();
        assert!(a.try_grow(0, 32)); // 2 private blocks
        let b = a.promote_to_shared(0).unwrap();
        assert!(a.try_admit(1, &[b], 17)); // shares b + 1 private
        assert!(a.try_grow(2, 16)); // 1 private block
        assert_eq!(a.used_blocks(), 4);
        assert_eq!(a.release_all(), 4);
        assert_eq!(a.used_blocks(), 0);
        assert_eq!(a.holders(), 0);
        assert_eq!(a.shared_blocks(), 0);
        assert_eq!(a.shared_refs(b), 0, "shared refs are gone wholesale");
        assert_eq!(a.held_blocks(1), 0);
        assert_eq!(a.high_water_blocks(), 4, "statistics outlive the crash");
        assert_eq!(a.release_all(), 0, "second reset is a no-op");
        // The allocator is usable again at full capacity.
        assert!(a.try_grow(9, 16 * 8));
        assert_eq!(a.free_blocks(), Some(0));
    }

    #[test]
    fn unlimited_never_fails_but_tracks() {
        let mut a = PagedKvAllocator::unlimited(16).unwrap();
        assert!(a.try_grow(0, 1 << 20));
        assert_eq!(a.capacity_blocks(), None);
        assert_eq!(a.free_blocks(), None);
        assert_eq!(a.used_blocks(), (1 << 20) / 16);
        assert_eq!(a.high_water_frac(), 0.0);
    }

    #[test]
    fn shared_blocks_are_refcounted_not_double_counted() {
        let mut a = PagedKvAllocator::new(16, 4).unwrap();
        // Request 0 prefills 32 tokens (2 private blocks), then both are
        // promoted into a prefix index.
        assert!(a.try_grow(0, 32));
        let b0 = a.promote_to_shared(0).unwrap();
        let b1 = a.promote_to_shared(0).unwrap();
        assert_eq!(a.promote_to_shared(0), None, "no private block left");
        assert_eq!(a.used_blocks(), 2, "promotion does not change occupancy");
        assert_eq!((a.shared_refs(b0), a.shared_refs(b1)), (2, 2));

        // Request 1 shares both blocks and needs one private for 33 tokens.
        assert!(a.try_admit(1, &[b0, b1], 33));
        assert_eq!(a.used_blocks(), 3, "shared blocks are counted once");
        assert_eq!(a.held_blocks(1), 3);
        assert_eq!(a.shared_held(1), 2);
        assert_eq!(a.shared_refs(b0), 3);

        // Request 0 releases: shared blocks survive (index + request 1).
        assert_eq!(a.release(0), 0);
        assert_eq!(a.shared_refs(b0), 2);
        assert_eq!(a.used_blocks(), 3);

        // Request 1 releases: its private frees, shared blocks survive on
        // the index's reference alone.
        assert_eq!(a.release(1), 1);
        assert_eq!((a.shared_refs(b0), a.shared_refs(b1)), (1, 1));
        assert_eq!(a.used_blocks(), 2);
        assert_eq!(a.shared_blocks(), 2);

        // The index evicts: last references free the blocks.
        assert!(a.release_shared(b0));
        assert!(a.release_shared(b1));
        assert_eq!(a.used_blocks(), 0);
        assert_eq!(a.shared_blocks(), 0);
    }

    #[test]
    fn failed_admit_takes_nothing() {
        let mut a = PagedKvAllocator::new(16, 2).unwrap();
        assert!(a.try_grow(0, 16));
        let b = a.promote_to_shared(0).unwrap();
        // 3 blocks needed, 1 shared + 2 private, but only 1 block is free.
        assert!(!a.try_admit(1, &[b], 48));
        assert_eq!(a.shared_refs(b), 2, "failed admission must not retain");
        assert_eq!(a.held_blocks(1), 0);
        assert_eq!(a.used_blocks(), 1);
        // Within capacity it succeeds.
        assert!(a.try_admit(1, &[b], 32));
        assert_eq!(a.used_blocks(), 2);
    }

    #[test]
    fn alloc_shared_respects_capacity() {
        let mut a = PagedKvAllocator::new(16, 1).unwrap();
        let b = a.alloc_shared().unwrap();
        assert_eq!(a.shared_refs(b), 1);
        assert_eq!(a.alloc_shared(), None, "capacity exhausted");
        assert!(a.release_shared(b));
        assert!(a.alloc_shared().is_some());
    }

    #[test]
    fn budget_derivation() {
        use cimtpu_models::TransformerConfig;
        let model = TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap();
        let fp = crate::KvFootprint::of(&model); // 1024 B/token
        let a = PagedKvAllocator::from_budget(Some(Bytes::from_kib(64)), &fp, 16).unwrap();
        assert_eq!(a.capacity_blocks(), Some(4));
        let unlimited = PagedKvAllocator::from_budget(None, &fp, 16).unwrap();
        assert_eq!(unlimited.capacity_blocks(), None);
        // Zero footprint (DiT): never limited.
        let dit =
            PagedKvAllocator::from_budget(Some(Bytes::new(1)), &crate::KvFootprint::none(), 16)
                .unwrap();
        assert_eq!(dit.capacity_blocks(), None);
    }

    #[test]
    fn budget_resolution() {
        use cimtpu_models::TransformerConfig;
        let model = TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap();
        let fp = crate::KvFootprint::of(&model);
        let hbm = Bytes::from_mib(8);
        assert_eq!(KvBudget::Unlimited.resolve(hbm, &fp), None);
        assert_eq!(
            KvBudget::Bytes(Bytes::from_kib(64)).resolve(hbm, &fp),
            Some(Bytes::from_kib(64))
        );
        let left = KvBudget::HbmMinusWeights.resolve(hbm, &fp).unwrap();
        assert_eq!(left, hbm.saturating_sub(fp.weight_bytes()));
    }
}
