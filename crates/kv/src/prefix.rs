//! Prefix sharing: a block-aligned radix index over prompt-token
//! prefixes, with copy-on-write on divergence.
//!
//! # Model
//!
//! Causal attention makes a token's KV entry a function of the token *and
//! every token before it*, so two requests whose prompts agree on their
//! first `n` tokens compute identical KV state for those `n` positions.
//! The [`PrefixIndex`] exploits that: it maps block-aligned prompt
//! prefixes onto resident KV blocks of a [`PagedKvAllocator`], so a new
//! request **shares** the cached blocks instead of re-allocating and
//! re-computing them.
//!
//! The index is a radix tree whose edges each carry up to one block's
//! worth of token content:
//!
//! - an **interior or full-leaf node** holds exactly `block_tokens`
//!   tokens and one shared block of the allocator;
//! - a **partial tail node** (always a leaf) holds the trailing
//!   `prompt_len % block_tokens` tokens of an inserted prompt, in its own
//!   shared block.
//!
//! The path from the root to a node spells out a prompt prefix; children
//! may overlap in content (two prompts that diverge mid-block each leave
//! a node for that block span), and lookup picks the longest match.
//!
//! # Sharing, copy-on-write, and the ref-count contract
//!
//! [`PrefixIndex::lookup`] walks a prompt through the tree and splits the
//! match into:
//!
//! - **fully matched blocks** — whole-block matches the request attaches
//!   by reference ([`PagedKvAllocator::try_admit`]); the blocks are
//!   immutable (a prompt never writes into a fully-ingested block), so
//!   aliasing is free;
//! - an optional **partial match** — the request's prompt diverges (or
//!   ends) mid-block. The cached KV for the matched positions is still
//!   valid, but the request must *write* later positions of that block
//!   span, so the block cannot be aliased: the matched tokens are
//!   **copied** into the request's own private block and the computation
//!   of those positions is skipped. That copy is the copy-on-write event
//!   ([`PrefixStats::cow_copies`]).
//!
//! [`PrefixIndex::commit`] inserts the request's uncached prompt blocks:
//! full blocks are *promoted* in place
//! ([`PagedKvAllocator::promote_to_shared`] — the request's own block
//! gains an identity and the index takes a reference; no copy), and the
//! partial tail is *retained by copy* into a fresh index-owned block
//! (also counted as a copy-on-write, and skipped best-effort when no
//! block is free or when the caller cannot afford speculative blocks —
//! run-to-completion engines, whose admission reserved the worst case).
//!
//! Ref-count invariants (enforced by the allocator, relied on here):
//!
//! 1. every indexed node holds exactly one reference to its block, and
//!    every resident request holds one reference per attached block;
//! 2. a shared block is freed only when its last reference drops — a
//!    block is **never** freed while any request (or the index) still
//!    references it;
//! 3. [`PrefixIndex::evict`] releases only blocks whose *sole* remaining
//!    reference is the index itself (unshared-or-last-reference blocks),
//!    leaves first in least-recently-used order, so eviction can never
//!    invalidate a resident request's cache.
//!
//! # Determinism
//!
//! All choices — longest-match ties, LRU ties, child ordering — resolve
//! by insertion order and node index, and the "clock" is a logical
//! counter bumped per commit, so equal request sequences produce equal
//! sharing decisions, bit-for-bit, run to run.

use crate::PagedKvAllocator;
use serde::{Deserialize, Serialize};

/// Aggregate counters of one [`PrefixIndex`] (or the sum over several —
/// see [`PrefixStats::absorb`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrefixStats {
    /// Committed prefix lookups (one per successful request admission).
    pub lookups: u64,
    /// Lookups that matched at least one token.
    pub hits: u64,
    /// Whole blocks attached by reference instead of being recomputed.
    pub shared_blocks: u64,
    /// Prompt tokens served from the cache (full-block and partial).
    pub shared_tokens: u64,
    /// Copy-on-write events: partial-block divergences copied into a
    /// private block, plus partial prompt tails retained by copy.
    pub cow_copies: u64,
    /// Blocks inserted into the index (promotions + tail copies).
    pub inserted_blocks: u64,
    /// Index-held blocks evicted to free capacity.
    pub evicted_blocks: u64,
}

impl PrefixStats {
    /// Folds another index's counters into this one.
    pub fn absorb(&mut self, other: &PrefixStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.shared_blocks += other.shared_blocks;
        self.shared_tokens += other.shared_tokens;
        self.cow_copies += other.cow_copies;
        self.inserted_blocks += other.inserted_blocks;
        self.evicted_blocks += other.evicted_blocks;
    }
}

impl std::fmt::Display for PrefixStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits {}/{}  shared {} block(s) / {} token(s)  cow {}  inserted {}  evicted {}",
            self.hits,
            self.lookups,
            self.shared_blocks,
            self.shared_tokens,
            self.cow_copies,
            self.inserted_blocks,
            self.evicted_blocks
        )
    }
}

/// What a [`PrefixIndex::lookup`] found for one prompt.
#[derive(Debug, Clone)]
pub struct PrefixMatch {
    /// Fully matched interior nodes, root-first.
    path: Vec<usize>,
    /// The partially matched node and how many of its tokens matched.
    partial: Option<(usize, u64)>,
    /// The partially matched node's block (the copy-on-write *source*).
    partial_block: Option<u64>,
    /// Shared blocks of the fully matched nodes — what the request
    /// attaches by reference.
    blocks: Vec<u64>,
    /// Total matched prompt tokens (full blocks + partial).
    matched_tokens: u64,
}

impl PrefixMatch {
    /// Shared blocks the request can attach by reference
    /// ([`PagedKvAllocator::try_admit`]).
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// The block a partial match copies from, if any. A caller that runs
    /// [`PrefixIndex::evict`] between this lookup and its
    /// [`commit`](PrefixIndex::commit) must pin this block too
    /// ([`PagedKvAllocator::retain_shared`]) — the match's token skip is
    /// only valid while its source blocks stay resident.
    pub fn partial_block(&self) -> Option<u64> {
        self.partial_block
    }

    /// Total matched prompt tokens. Callers pricing a prefill should skip
    /// at most `matched_tokens` positions, and always compute at least the
    /// prompt's final token (its hidden state seeds the first output), so
    /// the priced skip is `matched_tokens.min(prompt_len - 1)`.
    pub fn matched_tokens(&self) -> u64 {
        self.matched_tokens
    }

    /// Whether anything matched.
    pub fn is_hit(&self) -> bool {
        self.matched_tokens > 0
    }

    /// Whether the match ends mid-block — the request reuses the matched
    /// positions by copy-on-write rather than by reference.
    pub fn is_partial(&self) -> bool {
        self.partial.is_some()
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// Block-span token content (`block_tokens` long, except partial
    /// tails).
    tokens: Vec<u64>,
    /// The shared allocator block holding this span's KV.
    block: u64,
    parent: Option<usize>,
    children: Vec<usize>,
    last_use: u64,
    dead: bool,
}

/// A block-aligned radix index over prompt-token prefixes (module docs:
/// [`crate::prefix`]). One index serves one executor's
/// [`PagedKvAllocator`]; the caller passes the same allocator to every
/// call.
#[derive(Debug, Clone)]
pub struct PrefixIndex {
    block_tokens: u64,
    nodes: Vec<Node>,
    /// Slots of evicted nodes, reused by the next insertion so churn
    /// does not grow `nodes` without bound.
    free: Vec<usize>,
    roots: Vec<usize>,
    clock: u64,
    stats: PrefixStats,
}

impl PrefixIndex {
    /// An empty index over `block_tokens`-token blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero (the allocator rejects that
    /// earlier).
    pub fn new(block_tokens: u64) -> Self {
        assert!(block_tokens > 0, "prefix index needs >= 1 token per block");
        PrefixIndex {
            block_tokens,
            nodes: Vec::new(),
            free: Vec::new(),
            roots: Vec::new(),
            clock: 0,
            stats: PrefixStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> PrefixStats {
        self.stats
    }

    /// Live (non-evicted) nodes — one shared block each.
    pub fn live_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| !n.dead).count()
    }

    /// Longest cached prefix of `prompt`. Pure: no reference is taken and
    /// no state changes — admission control may fail after a lookup, in
    /// which case the request simply retries later. Follow a successful
    /// admission with [`commit`](PrefixIndex::commit).
    pub fn lookup(&self, prompt: &[u64]) -> PrefixMatch {
        let mut m = PrefixMatch {
            path: Vec::new(),
            partial: None,
            partial_block: None,
            blocks: Vec::new(),
            matched_tokens: 0,
        };
        let mut pos = 0usize;
        let mut children: &[usize] = &self.roots;
        while pos < prompt.len() {
            let rest = &prompt[pos..];
            // Longest-matching child; ties pick the earliest inserted.
            let mut best: Option<(usize, usize)> = None; // (matched, node)
            for &c in children {
                let node = &self.nodes[c];
                debug_assert!(!node.dead, "dead node still linked");
                let matched = node
                    .tokens
                    .iter()
                    .zip(rest)
                    .take_while(|(a, b)| a == b)
                    .count();
                if matched > 0 && best.is_none_or(|(bm, _)| matched > bm) {
                    best = Some((matched, c));
                }
            }
            let Some((matched, c)) = best else { break };
            let node = &self.nodes[c];
            if matched == node.tokens.len() && node.tokens.len() as u64 == self.block_tokens {
                // A whole immutable block: attach by reference, descend.
                m.path.push(c);
                m.blocks.push(node.block);
                m.matched_tokens += matched as u64;
                pos += matched;
                children = &node.children;
            } else {
                // Divergence (or prompt end / partial tail) mid-block: the
                // matched positions are reused by copy-on-write.
                m.partial = Some((c, matched as u64));
                m.partial_block = Some(node.block);
                m.matched_tokens += matched as u64;
                break;
            }
        }
        m
    }

    /// Commits an admitted request: touches the matched path (LRU),
    /// records the stats, and inserts the request's uncached prompt
    /// blocks — full blocks by promoting the request's own private blocks
    /// in place, the partial tail (if `retain_partial`) by copying it
    /// into a fresh index-owned block, best-effort. The caller must
    /// already have admitted `request` into `alloc` covering at least
    /// `prompt.len()` tokens with `m.blocks()` attached.
    ///
    /// Run-to-completion engines pass `retain_partial = false`: their
    /// admission reserved the worst case assuming no speculative blocks,
    /// so the tail copy could steal a reserved block mid-batch.
    pub fn commit(
        &mut self,
        prompt: &[u64],
        m: &PrefixMatch,
        request: u64,
        alloc: &mut PagedKvAllocator,
        retain_partial: bool,
    ) {
        self.clock += 1;
        let clock = self.clock;
        for &n in &m.path {
            self.nodes[n].last_use = clock;
        }
        if let Some((n, _)) = m.partial {
            self.nodes[n].last_use = clock;
        }
        self.stats.lookups += 1;
        if m.is_hit() {
            self.stats.hits += 1;
        }
        self.stats.shared_blocks += m.blocks.len() as u64;
        self.stats.shared_tokens += m.matched_tokens;
        if m.is_partial() {
            self.stats.cow_copies += 1;
        }

        // Insert the spans the full-block path does not cover. If the
        // partial match already covers the whole remaining prompt, the
        // cache holds everything this prompt could offer.
        let mut pos = m.path.len() * self.block_tokens as usize;
        if m.matched_tokens as usize >= prompt.len() {
            return;
        }
        let mut parent = m.path.last().copied();
        while pos < prompt.len() {
            let end = (pos + self.block_tokens as usize).min(prompt.len());
            let full = end - pos == self.block_tokens as usize;
            let block = if full {
                // The request's resident block gains an identity; the
                // index takes the second reference. No copy.
                let Some(block) = alloc.promote_to_shared(request) else {
                    debug_assert!(false, "committed request holds no private block");
                    return;
                };
                block
            } else {
                // Partial tail: retained by copying into an index-owned
                // block (a copy-on-write), only if a block is free.
                if !retain_partial {
                    return;
                }
                let Some(block) = alloc.alloc_shared() else { return };
                self.stats.cow_copies += 1;
                block
            };
            self.stats.inserted_blocks += 1;
            let node = Node {
                tokens: prompt[pos..end].to_vec(),
                block,
                parent,
                children: Vec::new(),
                last_use: clock,
                dead: false,
            };
            let idx = match self.free.pop() {
                Some(slot) => {
                    self.nodes[slot] = node;
                    slot
                }
                None => {
                    self.nodes.push(node);
                    self.nodes.len() - 1
                }
            };
            match parent {
                Some(p) => self.nodes[p].children.push(idx),
                None => self.roots.push(idx),
            }
            parent = Some(idx);
            pos = end;
        }
    }

    /// Drops every cached prefix at once — the "replica died" path,
    /// paired with [`PagedKvAllocator::release_all`]. The index does not
    /// touch any allocator here: the caller has already (or is about to)
    /// release the whole allocator, so per-block reference bookkeeping
    /// would be against state that no longer exists. Counters in
    /// [`stats`](Self::stats) are cumulative across the reset so a report
    /// still accounts for hits served before the crash.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.roots.clear();
    }

    /// Frees up to `need` blocks by evicting leaves whose block's sole
    /// remaining reference is the index (least-recently-used first, ties
    /// by node index). Blocks still referenced by resident requests are
    /// never touched. Returns how many blocks were freed.
    pub fn evict(&mut self, alloc: &mut PagedKvAllocator, need: u64) -> u64 {
        let mut freed = 0;
        while freed < need {
            let victim = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| {
                    !n.dead && n.children.is_empty() && alloc.shared_refs(n.block) == 1
                })
                .min_by_key(|(i, n)| (n.last_use, *i))
                .map(|(i, _)| i);
            let Some(v) = victim else { break };
            let released = alloc.release_shared(self.nodes[v].block);
            debug_assert!(released, "index held the last reference");
            self.nodes[v].dead = true;
            self.nodes[v].tokens = Vec::new();
            if let Some(p) = self.nodes[v].parent {
                self.nodes[p].children.retain(|&c| c != v);
            } else {
                self.roots.retain(|&c| c != v);
            }
            self.free.push(v);
            freed += 1;
        }
        self.stats.evicted_blocks += freed;
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic token stream: token `i` of stream `seed`.
    fn tok(seed: u64, i: u64) -> u64 {
        let mut z = (seed ^ i).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }

    /// A prompt: `head` tokens from stream `head_seed`, the rest from a
    /// unique stream.
    fn prompt(head_seed: u64, head: u64, tail_seed: u64, len: u64) -> Vec<u64> {
        (0..len)
            .map(|i| if i < head { tok(head_seed, i) } else { tok(tail_seed, i) })
            .collect()
    }

    /// Admit + commit one request, returning its matched tokens.
    fn admit(
        index: &mut PrefixIndex,
        alloc: &mut PagedKvAllocator,
        id: u64,
        tokens: &[u64],
    ) -> PrefixMatch {
        let m = index.lookup(tokens);
        assert!(alloc.try_admit(id, m.blocks(), tokens.len() as u64));
        index.commit(tokens, &m, id, alloc, true);
        m
    }

    #[test]
    fn identical_prompts_share_everything_but_one_token() {
        let mut alloc = PagedKvAllocator::unlimited(16).unwrap();
        let mut index = PrefixIndex::new(16);
        let p = prompt(7, 40, 0, 40); // whole prompt from one stream
        let m0 = admit(&mut index, &mut alloc, 0, &p);
        assert!(!m0.is_hit());
        // 2 full blocks promoted + 1 partial tail copied.
        assert_eq!(index.live_nodes(), 3);
        assert_eq!(index.stats().inserted_blocks, 3);
        assert_eq!(index.stats().cow_copies, 1, "tail retention is a copy");
        assert_eq!(alloc.used_blocks(), 4, "3 request blocks + 1 tail copy");

        // The same content again: full-block + partial-tail hit.
        let m1 = admit(&mut index, &mut alloc, 1, &p);
        assert_eq!(m1.matched_tokens(), 40);
        assert_eq!(m1.blocks().len(), 2);
        assert!(m1.is_partial());
        // Nothing new inserted; the priced skip caps at prompt_len - 1.
        assert_eq!(index.live_nodes(), 3);
        assert_eq!(m1.matched_tokens().min(p.len() as u64 - 1), 39);
    }

    #[test]
    fn clear_resets_structure_but_keeps_cumulative_stats() {
        let mut alloc = PagedKvAllocator::unlimited(16).unwrap();
        let mut index = PrefixIndex::new(16);
        let p = prompt(7, 40, 0, 40);
        admit(&mut index, &mut alloc, 0, &p);
        admit(&mut index, &mut alloc, 1, &p);
        assert!(index.live_nodes() > 0);
        let hits_before = index.stats().hits;
        assert!(hits_before > 0);

        // The replica dies: allocator resets wholesale, index follows.
        alloc.release_all();
        index.clear();
        assert_eq!(index.live_nodes(), 0);
        assert_eq!(index.stats().hits, hits_before, "counters are cumulative");
        let m = index.lookup(&p);
        assert_eq!(m.matched_tokens(), 0, "the restarted cache is cold");

        // The index rebuilds from scratch against the reset allocator.
        admit(&mut index, &mut alloc, 2, &p);
        assert_eq!(index.live_nodes(), 3);
        let m = index.lookup(&p);
        assert_eq!(m.matched_tokens(), 40);
    }

    #[test]
    fn shared_head_diverges_with_cow_mid_block() {
        let mut alloc = PagedKvAllocator::unlimited(16).unwrap();
        let mut index = PrefixIndex::new(16);
        // 24-token shared head: 1 full block + 8 tokens into block 2.
        let a = prompt(9, 24, 100, 48);
        let b = prompt(9, 24, 200, 48);
        admit(&mut index, &mut alloc, 0, &a);
        let m = admit(&mut index, &mut alloc, 1, &b);
        assert_eq!(m.matched_tokens(), 24, "whole head shared, not floor(24/16)*16");
        assert_eq!(m.blocks().len(), 1, "one full block by reference");
        assert!(m.is_partial(), "8 tokens reused by copy-on-write");
        // b inserts its own diverging span nodes under the shared block.
        let m2 = index.lookup(&b);
        assert_eq!(m2.matched_tokens(), 48, "b's own path is now cached");
    }

    #[test]
    fn lookup_prefers_longest_match_deterministically() {
        let mut alloc = PagedKvAllocator::unlimited(8).unwrap();
        let mut index = PrefixIndex::new(8);
        // Two siblings sharing a 4-token prefix of one block span.
        let a = prompt(3, 4, 50, 8);
        let b = prompt(3, 4, 60, 8);
        admit(&mut index, &mut alloc, 0, &a);
        admit(&mut index, &mut alloc, 1, &b);
        // A third prompt matching b for 6 tokens picks b's node.
        let mut c = prompt(3, 4, 60, 8);
        c[6] = 0xDEAD;
        c[7] = 0xBEEF;
        let m = index.lookup(&c);
        assert_eq!(m.matched_tokens(), 6);
        assert!(m.is_partial());
    }

    #[test]
    fn eviction_spares_referenced_blocks_and_is_lru() {
        let mut alloc = PagedKvAllocator::new(16, 8).unwrap();
        let mut index = PrefixIndex::new(16);
        let a = prompt(1, 32, 10, 32); // 2 full blocks
        let b = prompt(2, 32, 20, 32); // 2 full blocks, different head
        admit(&mut index, &mut alloc, 0, &a);
        admit(&mut index, &mut alloc, 1, &b);
        assert_eq!(alloc.used_blocks(), 4);
        // Request 0 is gone; its blocks are index-only. Request 1 stays.
        alloc.release(0);
        let freed = index.evict(&mut alloc, 8);
        // Only a's leaf-then-parent chain can free; b's blocks are
        // referenced by the resident request 1.
        assert_eq!(freed, 2);
        assert_eq!(index.stats().evicted_blocks, 2);
        assert_eq!(alloc.used_blocks(), 2);
        assert_eq!(index.lookup(&a).matched_tokens(), 0, "a evicted");
        assert_eq!(index.lookup(&b).matched_tokens(), 32, "b retained");
        // After request 1 releases, everything can free.
        alloc.release(1);
        assert_eq!(index.evict(&mut alloc, 8), 2);
        assert_eq!(alloc.used_blocks(), 0);
    }

    #[test]
    fn partial_source_survives_eviction_when_pinned() {
        let mut alloc = PagedKvAllocator::new(16, 8).unwrap();
        let mut index = PrefixIndex::new(16);
        // One request leaves 1 full block + a partial tail node, then
        // releases: both become index-only (evictable).
        let p = prompt(6, 24, 0, 24);
        admit(&mut index, &mut alloc, 0, &p);
        alloc.release(0);
        // A same-head request matches the full block and the partial
        // tail. Pinning everything the match reads must keep eviction
        // away from both, while unpinned blocks would go.
        let m = index.lookup(&p);
        assert_eq!(m.blocks().len(), 1);
        let src = m.partial_block().expect("tail matched partially");
        for b in m.blocks().iter().copied().chain(m.partial_block()) {
            alloc.retain_shared(b);
        }
        assert_eq!(index.evict(&mut alloc, u64::MAX), 0, "everything reachable is pinned");
        for b in m.blocks().iter().copied().chain(m.partial_block()) {
            alloc.release_shared(b);
        }
        assert_eq!(alloc.shared_refs(src), 1, "back to index-only");
        // The match is still fully valid after the pinned eviction pass.
        assert!(alloc.try_admit(1, m.blocks(), 24));
        index.commit(&p, &m, 1, &mut alloc, true);
        assert_eq!(index.lookup(&p).matched_tokens(), 24);
        // Unpinned, the same pass evicts both blocks.
        alloc.release(1);
        assert_eq!(index.evict(&mut alloc, u64::MAX), 2);
        assert_eq!(index.lookup(&p).matched_tokens(), 0);
        // Evicted slots are reused by the next insertion, not leaked.
        let slots = index.nodes.len();
        admit(&mut index, &mut alloc, 2, &p);
        assert_eq!(index.nodes.len(), slots, "insertion reuses freed slots");
        assert_eq!(index.live_nodes(), 2);
    }

    #[test]
    fn resumed_request_rehits_its_own_insertions() {
        let mut alloc = PagedKvAllocator::new(16, 8).unwrap();
        let mut index = PrefixIndex::new(16);
        let p = prompt(5, 64, 0, 64); // 4 full blocks, block-aligned
        admit(&mut index, &mut alloc, 0, &p);
        assert_eq!(alloc.used_blocks(), 4);
        // Preemption: the request drops its references; the index keeps
        // the blocks alive.
        alloc.release(0);
        assert_eq!(alloc.used_blocks(), 4);
        // Resume: a full-prefix hit, nothing re-inserted.
        let m = admit(&mut index, &mut alloc, 0, &p);
        assert_eq!(m.matched_tokens(), 64);
        assert_eq!(m.blocks().len(), 4);
        assert!(!m.is_partial(), "block-aligned prompts need no copy");
        assert_eq!(index.live_nodes(), 4);
    }

    #[test]
    fn partial_retention_is_best_effort_and_skippable() {
        // Capacity for the prompt itself but not the tail copy.
        let mut alloc = PagedKvAllocator::new(16, 2).unwrap();
        let mut index = PrefixIndex::new(16);
        let p = prompt(4, 24, 0, 24);
        let m = index.lookup(&p);
        assert!(alloc.try_admit(0, m.blocks(), 24));
        index.commit(&p, &m, 0, &mut alloc, true);
        // Full block promoted; the tail copy did not fit and was skipped.
        assert_eq!(index.live_nodes(), 1);
        assert_eq!(alloc.used_blocks(), 2);

        // retain_partial = false skips the copy even with room.
        let mut alloc2 = PagedKvAllocator::new(16, 8).unwrap();
        let mut index2 = PrefixIndex::new(16);
        let m2 = index2.lookup(&p);
        assert!(alloc2.try_admit(0, m2.blocks(), 24));
        index2.commit(&p, &m2, 0, &mut alloc2, false);
        assert_eq!(index2.live_nodes(), 1);
        assert_eq!(alloc2.used_blocks(), 2, "no speculative block taken");
    }

    #[test]
    fn stats_accumulate_and_absorb() {
        let mut alloc = PagedKvAllocator::unlimited(16).unwrap();
        let mut index = PrefixIndex::new(16);
        let p = prompt(11, 32, 0, 32);
        admit(&mut index, &mut alloc, 0, &p);
        admit(&mut index, &mut alloc, 1, &p);
        let s = index.stats();
        assert_eq!((s.lookups, s.hits), (2, 1));
        assert_eq!(s.shared_blocks, 2);
        assert_eq!(s.shared_tokens, 32);
        let mut total = PrefixStats::default();
        total.absorb(&s);
        total.absorb(&s);
        assert_eq!(total.lookups, 4);
        assert_eq!(total.hits, 2);
        let line = total.to_string();
        assert!(line.contains("hits 2/4"), "{line}");
    }
}
