//! Allocator invariants under random reserve/grow/release sequences.

use proptest::prelude::*;

use crate::PagedKvAllocator;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Occupancy never exceeds capacity, failed grows allocate nothing,
    /// and the high-water mark tracks the running maximum.
    #[test]
    fn occupancy_never_exceeds_capacity(
        block_tokens in 1u64..32,
        capacity in 0u64..64,
        ops in proptest::collection::vec((0u64..8, 0u64..512, proptest::bool::ANY), 0..64),
    ) {
        let mut a = PagedKvAllocator::new(block_tokens, capacity).unwrap();
        let mut max_seen = 0;
        for (id, tokens, is_grow) in ops {
            let before = a.used_blocks();
            if is_grow {
                let fits = a.would_fit(id, tokens);
                let grown = a.try_grow(id, tokens);
                prop_assert_eq!(fits, grown, "would_fit must agree with try_grow");
                if grown {
                    prop_assert!(a.held_blocks(id) * block_tokens >= tokens);
                } else {
                    prop_assert_eq!(a.used_blocks(), before, "failed grow must not allocate");
                }
            } else {
                let freed = a.release(id);
                prop_assert_eq!(a.used_blocks(), before - freed);
            }
            prop_assert!(a.used_blocks() <= capacity, "occupancy over capacity");
            max_seen = max_seen.max(a.used_blocks());
            prop_assert_eq!(a.high_water_blocks(), max_seen);
        }
    }

    /// After releasing every holder, all blocks are free again.
    #[test]
    fn all_blocks_free_after_drain(
        block_tokens in 1u64..32,
        capacity in 1u64..64,
        requests in proptest::collection::vec((0u64..16, 1u64..512), 1..32),
    ) {
        let mut a = PagedKvAllocator::new(block_tokens, capacity).unwrap();
        let mut admitted = Vec::new();
        for (id, tokens) in requests {
            if a.try_grow(id, tokens) && !admitted.contains(&id) {
                admitted.push(id);
            }
        }
        for id in admitted {
            a.release(id);
        }
        prop_assert_eq!(a.used_blocks(), 0);
        prop_assert_eq!(a.free_blocks(), Some(capacity));
        prop_assert_eq!(a.holders(), 0);
    }

    /// Held blocks always cover the requested token count exactly
    /// (ceil division), on both limited and unlimited allocators.
    #[test]
    fn blocks_cover_tokens(
        block_tokens in 1u64..64,
        tokens in 0u64..4096,
    ) {
        let mut a = PagedKvAllocator::unlimited(block_tokens).unwrap();
        prop_assert!(a.try_grow(0, tokens));
        let held = a.held_blocks(0);
        prop_assert!(held * block_tokens >= tokens);
        prop_assert!(held == 0 || (held - 1) * block_tokens < tokens);
    }
}
