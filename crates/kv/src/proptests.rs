//! Allocator invariants under random reserve/grow/release sequences,
//! including prefix-sharing churn (share / split / evict).

use proptest::prelude::*;

use crate::{PagedKvAllocator, PrefixIndex};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Occupancy never exceeds capacity, failed grows allocate nothing,
    /// and the high-water mark tracks the running maximum.
    #[test]
    fn occupancy_never_exceeds_capacity(
        block_tokens in 1u64..32,
        capacity in 0u64..64,
        ops in proptest::collection::vec((0u64..8, 0u64..512, proptest::bool::ANY), 0..64),
    ) {
        let mut a = PagedKvAllocator::new(block_tokens, capacity).unwrap();
        let mut max_seen = 0;
        for (id, tokens, is_grow) in ops {
            let before = a.used_blocks();
            if is_grow {
                let fits = a.would_fit(id, tokens);
                let grown = a.try_grow(id, tokens);
                prop_assert_eq!(fits, grown, "would_fit must agree with try_grow");
                if grown {
                    prop_assert!(a.held_blocks(id) * block_tokens >= tokens);
                } else {
                    prop_assert_eq!(a.used_blocks(), before, "failed grow must not allocate");
                }
            } else {
                let freed = a.release(id);
                prop_assert_eq!(a.used_blocks(), before - freed);
            }
            prop_assert!(a.used_blocks() <= capacity, "occupancy over capacity");
            max_seen = max_seen.max(a.used_blocks());
            prop_assert_eq!(a.high_water_blocks(), max_seen);
        }
    }

    /// After releasing every holder, all blocks are free again.
    #[test]
    fn all_blocks_free_after_drain(
        block_tokens in 1u64..32,
        capacity in 1u64..64,
        requests in proptest::collection::vec((0u64..16, 1u64..512), 1..32),
    ) {
        let mut a = PagedKvAllocator::new(block_tokens, capacity).unwrap();
        let mut admitted = Vec::new();
        for (id, tokens) in requests {
            if a.try_grow(id, tokens) && !admitted.contains(&id) {
                admitted.push(id);
            }
        }
        for id in admitted {
            a.release(id);
        }
        prop_assert_eq!(a.used_blocks(), 0);
        prop_assert_eq!(a.free_blocks(), Some(capacity));
        prop_assert_eq!(a.holders(), 0);
    }

    /// Held blocks always cover the requested token count exactly
    /// (ceil division), on both limited and unlimited allocators.
    #[test]
    fn blocks_cover_tokens(
        block_tokens in 1u64..64,
        tokens in 0u64..4096,
    ) {
        let mut a = PagedKvAllocator::unlimited(block_tokens).unwrap();
        prop_assert!(a.try_grow(0, tokens));
        let held = a.held_blocks(0);
        prop_assert!(held * block_tokens >= tokens);
        prop_assert!(held == 0 || (held - 1) * block_tokens < tokens);
    }

    /// Ref-count safety under prefix-sharing churn: random admissions
    /// (with shared heads, so prompts split and share), releases, and
    /// evictions never free a block that is still shared, never exceed
    /// capacity, and always drain back to zero.
    #[test]
    fn refcount_safety_under_share_split_evict_churn(
        block_tokens in 1u64..16,
        capacity in 4u64..48,
        ops in proptest::collection::vec(
            // (op selector, head stream, head len, prompt len, evict need)
            (0u8..3, 0u64..3, 0u64..40, 1u64..40, 1u64..8),
            1..64,
        ),
    ) {
        let mut alloc = PagedKvAllocator::new(block_tokens, capacity).unwrap();
        let mut index = PrefixIndex::new(block_tokens);
        let mut resident: Vec<(u64, Vec<u64>)> = Vec::new(); // (id, attached blocks)
        let mut next_id = 0u64;
        for (op, head_stream, head, len, need) in ops {
            match op {
                // Admit a request whose prompt mixes a shared head with a
                // unique tail (the split/divergence source).
                0 => {
                    let id = next_id;
                    next_id += 1;
                    let prompt: Vec<u64> = (0..len)
                        .map(|i| {
                            if i < head {
                                (head_stream << 32) ^ i
                            } else {
                                (0xFFFF_0000 ^ id) << 16 ^ i
                            }
                        })
                        .collect();
                    let m = index.lookup(&prompt);
                    if alloc.try_admit(id, m.blocks(), len) {
                        index.commit(&prompt, &m, id, &mut alloc, true);
                        resident.push((id, m.blocks().to_vec()));
                    } else {
                        prop_assert_eq!(alloc.held_blocks(id), 0,
                            "failed admission must take nothing");
                    }
                }
                // Release the oldest resident (its shared blocks must
                // survive on the index's reference).
                1 => {
                    if !resident.is_empty() {
                        let (id, attached) = resident.remove(0);
                        alloc.release(id);
                        for b in attached {
                            prop_assert!(alloc.shared_refs(b) >= 1,
                                "index reference must keep block {b} alive");
                        }
                    }
                }
                // Evict: must never touch a block some resident request
                // still references.
                _ => {
                    index.evict(&mut alloc, need);
                    for (_, attached) in &resident {
                        for &b in attached {
                            prop_assert!(alloc.shared_refs(b) >= 1,
                                "evicted a block referenced by a resident request");
                        }
                    }
                }
            }
            prop_assert!(alloc.used_blocks() <= capacity, "occupancy over capacity");
        }
        // Drain: release everything, evict the whole index — all blocks free.
        for (id, _) in resident {
            alloc.release(id);
        }
        index.evict(&mut alloc, u64::MAX);
        prop_assert_eq!(alloc.used_blocks(), 0, "drain leaks blocks");
        prop_assert_eq!(alloc.shared_blocks(), 0);
        prop_assert_eq!(alloc.holders(), 0);
    }
}
