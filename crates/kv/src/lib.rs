//! KV-cache memory subsystem: per-request footprints and paged allocation.
//!
//! The serving layer prices *compute* through the chip simulator; this
//! crate models the *memory* side of LLM serving — the KV cache — which in
//! practice, not compute, caps how many requests a chip can run at once.
//!
//! # Bytes-per-token math
//!
//! A decoder layer caches one key and one value vector per token. With
//! grouped-query attention only the `kv_heads · d_head` channels are
//! stored, so for a model with `L` layers at element size `s` bytes:
//!
//! ```text
//! bytes/token/layer = 2 · kv_heads · d_head · s
//! bytes/token       = L · 2 · kv_heads · d_head · s
//! request bytes     = (prompt_len + generated) · bytes/token
//! ```
//!
//! Under `p`-way tensor parallelism the heads are partitioned across the
//! ring, so each shard stores `1/p` of the footprint (rounded up).
//! [`KvFootprint`] computes these quantities from a
//! [`TransformerConfig`](cimtpu_models::TransformerConfig) — the same
//! geometry the workload builders price — so the memory model can never
//! drift from the compute model.
//!
//! # Paged allocation
//!
//! Real servers (vLLM-style) carve the KV region into fixed-size blocks of
//! `block_tokens` tokens and allocate per request on demand; a request
//! holding `t` tokens occupies `⌈t / block_tokens⌉` blocks. The
//! [`PagedKvAllocator`] implements exactly that bookkeeping: reserve /
//! grow / release per request id, occupancy never exceeding capacity, and
//! a high-water mark for reporting. [`KvBudget`] names where the byte
//! budget comes from (unlimited, an explicit cap, or the chip's HBM
//! capacity minus the resident weights).
//!
//! # Prefix sharing
//!
//! Requests whose prompts agree on a common head compute identical KV
//! state for it, so the allocator also supports **shared blocks** with
//! reference counts, and the [`PrefixIndex`] maps block-aligned
//! prompt-token prefixes onto them: a new request attaches the cached
//! blocks by reference instead of re-allocating and re-computing them,
//! diverging mid-block copies on write, and index-held blocks are evicted
//! (last-reference-only, LRU) when capacity runs short. See the
//! [`prefix`] module docs for the full sharing / copy-on-write / eviction
//! contract.
//!
//! # Examples
//!
//! ```
//! use cimtpu_kv::{KvFootprint, PagedKvAllocator};
//! use cimtpu_models::TransformerConfig;
//! use cimtpu_units::Bytes;
//!
//! let model = TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024)?;
//! let fp = KvFootprint::of(&model);
//! // 2 layers x 2 (K+V) x 4 heads x 64 d_head x 1 byte (INT8).
//! assert_eq!(fp.bytes_per_token(), Bytes::new(1024));
//!
//! // A 64 KiB budget in 16-token blocks holds 4 blocks.
//! let mut alloc = PagedKvAllocator::from_budget(Some(Bytes::from_kib(64)), &fp, 16)?;
//! assert_eq!(alloc.capacity_blocks(), Some(4));
//! assert!(alloc.try_grow(0, 32)); // request 0 prefills 32 tokens: 2 blocks
//! assert!(!alloc.try_grow(1, 48)); // 3 more blocks do not fit
//! assert_eq!(alloc.release(0), 2);
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod footprint;
mod paged;
pub mod prefix;

pub use footprint::KvFootprint;
pub use paged::{KvBudget, PagedKvAllocator};
pub use prefix::{PrefixIndex, PrefixMatch, PrefixStats};

#[cfg(test)]
mod proptests;
