//! Per-request KV-cache footprints derived from model geometry.

use serde::{Deserialize, Serialize};

use cimtpu_models::TransformerConfig;
use cimtpu_units::{Bytes, Error, Result};

/// The KV-cache byte footprint of one model (or one tensor-parallel shard
/// of it), derived from the same [`TransformerConfig`] geometry the
/// workload builders price.
///
/// All quantities are *per shard*: [`KvFootprint::of`] builds the
/// single-chip footprint, [`KvFootprint::sharded`] divides it across a
/// tensor-parallel ring (heads are partitioned, so each device stores
/// `1/p` of every token's cache, rounded up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvFootprint {
    /// KV bytes one token occupies in one layer, on this shard.
    bytes_per_token_per_layer: u64,
    /// Decoder layers caching KV.
    layers: u64,
    /// Resident weight bytes on this shard (whole model).
    weight_bytes: u64,
}

impl KvFootprint {
    /// The single-chip footprint of `model`.
    pub fn of(model: &TransformerConfig) -> Self {
        Self::sharded(model, 1).expect("1-way sharding is always valid")
    }

    /// The per-device footprint of `model` under `shards`-way tensor
    /// parallelism: each device stores `1/shards` of every token's KV and
    /// of the weights (rounded up).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `shards` is zero.
    pub fn sharded(model: &TransformerConfig, shards: u64) -> Result<Self> {
        if shards == 0 {
            return Err(Error::invalid_config("KV footprint needs >= 1 shard"));
        }
        let per_layer = model.kv_cache_bytes_per_layer(1, 1).get();
        Ok(KvFootprint {
            bytes_per_token_per_layer: per_layer.div_ceil(shards),
            layers: model.layers(),
            weight_bytes: (model.weight_bytes_per_layer().get() * model.layers())
                .div_ceil(shards),
        })
    }

    /// A zero footprint, for models with no KV cache (e.g. DiT serving).
    pub fn none() -> Self {
        KvFootprint { bytes_per_token_per_layer: 0, layers: 0, weight_bytes: 0 }
    }

    /// KV bytes per token in one layer (per shard).
    pub fn bytes_per_token_per_layer(&self) -> Bytes {
        Bytes::new(self.bytes_per_token_per_layer)
    }

    /// KV bytes per token across all layers (per shard).
    pub fn bytes_per_token(&self) -> Bytes {
        Bytes::new(self.bytes_per_token_per_layer * self.layers)
    }

    /// Resident weight bytes (per shard) — what HBM holds before any KV.
    pub fn weight_bytes(&self) -> Bytes {
        Bytes::new(self.weight_bytes)
    }

    /// KV bytes a request holding `tokens` tokens occupies (per shard).
    pub fn request_bytes(&self, tokens: u64) -> Bytes {
        Bytes::new(tokens * self.bytes_per_token_per_layer * self.layers)
    }

    /// How many whole tokens of KV fit in `budget` bytes (`u64::MAX` for a
    /// zero footprint — nothing is ever consumed).
    pub fn tokens_fitting(&self, budget: Bytes) -> u64 {
        budget
            .get()
            .checked_div(self.bytes_per_token().get())
            .unwrap_or(u64::MAX)
    }

    /// Bytes that cross the interconnect when a request holding `tokens`
    /// tokens of cache migrates between paged allocators of
    /// `block_tokens`-token blocks (disaggregated prefill→decode handoff,
    /// future swap-to-host): whole blocks move, so the transfer is the
    /// block-aligned footprint `⌈tokens / block_tokens⌉ · block_tokens`
    /// tokens, not the raw token footprint.
    ///
    /// Computed on this footprint's shard; hand the unsharded
    /// ([`KvFootprint::of`]) footprint in to size a transfer of the full
    /// cache.
    pub fn handoff_bytes(&self, tokens: u64, block_tokens: u64) -> Bytes {
        let aligned = tokens.div_ceil(block_tokens.max(1)) * block_tokens.max(1);
        self.request_bytes(aligned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TransformerConfig {
        TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap()
    }

    #[test]
    fn matches_model_kv_accounting() {
        let model = tiny();
        let fp = KvFootprint::of(&model);
        assert_eq!(
            fp.bytes_per_token_per_layer(),
            model.kv_cache_bytes_per_layer(1, 1)
        );
        // batch x ctx tokens of cache across one layer.
        assert_eq!(
            model.kv_cache_bytes_per_layer(8, 96).get(),
            8 * 96 * fp.bytes_per_token_per_layer().get()
        );
        // 2 (K+V) x kv_heads x d_head x dtype x layers per token.
        assert_eq!(fp.bytes_per_token(), Bytes::new(2 * 4 * 64 * 2));
        assert_eq!(fp.request_bytes(100), Bytes::new(100 * 1024));
    }

    #[test]
    fn gqa_shrinks_the_footprint() {
        let mha = TransformerConfig::new("mha", 4, 64, 8192, 28672).unwrap();
        let gqa = mha.clone().with_kv_heads(8).unwrap();
        let f_mha = KvFootprint::of(&mha);
        let f_gqa = KvFootprint::of(&gqa);
        assert_eq!(
            f_mha.bytes_per_token().get(),
            8 * f_gqa.bytes_per_token().get()
        );
    }

    #[test]
    fn sharding_divides_rounding_up() {
        let model = tiny(); // 512 B/token/layer
        let fp4 = KvFootprint::sharded(&model, 4).unwrap();
        assert_eq!(fp4.bytes_per_token_per_layer(), Bytes::new(128));
        let fp3 = KvFootprint::sharded(&model, 3).unwrap();
        assert_eq!(fp3.bytes_per_token_per_layer(), Bytes::new(171)); // ceil(512/3)
        assert!(KvFootprint::sharded(&model, 0).is_err());
        // Weights divide too.
        let full = KvFootprint::of(&model).weight_bytes().get();
        assert_eq!(fp4.weight_bytes().get(), full.div_ceil(4));
    }

    #[test]
    fn tokens_fitting_budget() {
        let fp = KvFootprint::of(&tiny()); // 1024 B/token
        assert_eq!(fp.tokens_fitting(Bytes::from_kib(64)), 64);
        assert_eq!(fp.tokens_fitting(Bytes::new(1023)), 0);
        assert_eq!(KvFootprint::none().tokens_fitting(Bytes::ZERO), u64::MAX);
    }

    #[test]
    fn handoff_moves_whole_blocks() {
        let fp = KvFootprint::of(&tiny()); // 1024 B/token
        // 100 tokens in 16-token blocks: 7 blocks = 112 tokens move.
        assert_eq!(fp.handoff_bytes(100, 16), Bytes::new(112 * 1024));
        // Exact block multiples are not padded.
        assert_eq!(fp.handoff_bytes(96, 16), fp.request_bytes(96));
        // A degenerate zero block size falls back to per-token transfer.
        assert_eq!(fp.handoff_bytes(100, 0), fp.request_bytes(100));
        assert_eq!(KvFootprint::none().handoff_bytes(100, 16), Bytes::ZERO);
    }
}
