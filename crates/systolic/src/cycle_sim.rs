//! Cycle-level functional simulator for small weight-stationary arrays.
//!
//! Unlike the analytical model, this simulator actually moves operands
//! through per-PE registers cycle by cycle, producing both the numeric
//! result and the exact cycle count. It exists to *validate* the analytical
//! equations (the two must agree for single-tile weight-stationary GEMMs)
//! and the numerical correctness of the dataflow.
//!
//! It is deliberately restricted to operand matrices that fit a single
//! weight tile (`k ≤ rows`, `n ≤ cols`) — multi-tile behaviour is pure
//! repetition and is covered by the analytical model.
//!
//! # Examples
//!
//! ```
//! use cimtpu_systolic::cycle_sim::CycleSim;
//!
//! let a = vec![vec![1i32, 2], vec![3, 4]]; // 2x2 activations
//! let w = vec![vec![5i32, 6], vec![7, 8]]; // 2x2 weights
//! let run = CycleSim::new(2, 2)?.run(&a, &w)?;
//! assert_eq!(run.result(), &[vec![19, 22], vec![43, 50]]);
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

use cimtpu_units::{Cycles, Error, Result};

/// A small weight-stationary systolic array simulated at cycle granularity.
#[derive(Debug, Clone)]
pub struct CycleSim {
    rows: usize,
    cols: usize,
}

/// Result of one [`CycleSim::run`]: the output matrix plus cycle counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleSimRun {
    result: Vec<Vec<i32>>,
    load_cycles: Cycles,
    compute_cycles: Cycles,
}

impl CycleSimRun {
    /// The computed `[m × n]` output matrix.
    pub fn result(&self) -> &[Vec<i32>] {
        &self.result
    }

    /// Cycles spent shifting weights into the array.
    pub fn load_cycles(&self) -> Cycles {
        self.load_cycles
    }

    /// Cycles from first activation entering to last output leaving.
    pub fn compute_cycles(&self) -> Cycles {
        self.compute_cycles
    }

    /// Total cycles (load + compute).
    pub fn total_cycles(&self) -> Cycles {
        self.load_cycles + self.compute_cycles
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Pe {
    weight: i32,
    /// Activation register (flows left → right).
    act: Option<i32>,
    /// Partial-sum register (flows top → bottom).
    psum: Option<i32>,
}

impl CycleSim {
    /// Creates a simulator for an `rows × cols` array.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero dimensions or arrays larger
    /// than 256×256 (the simulator is meant for validation, not scale).
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(Error::invalid_config("cycle sim dimensions must be non-zero"));
        }
        if rows > 256 || cols > 256 {
            return Err(Error::invalid_config(
                "cycle sim is limited to arrays of at most 256x256",
            ));
        }
        Ok(CycleSim { rows, cols })
    }

    /// Runs `activations [m × k] · weights [k × n]` through the array.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if the operands are empty, ragged, or
    /// exceed a single weight tile (`k > rows` or `n > cols`).
    pub fn run(&self, activations: &[Vec<i32>], weights: &[Vec<i32>]) -> Result<CycleSimRun> {
        let m = activations.len();
        let k = weights.len();
        let n = weights.first().map_or(0, Vec::len);
        if m == 0 || k == 0 || n == 0 {
            return Err(Error::invalid_shape("cycle sim operands must be non-empty"));
        }
        if activations.iter().any(|r| r.len() != k) || weights.iter().any(|r| r.len() != n) {
            return Err(Error::invalid_shape(
                "cycle sim operands must be rectangular and conformable",
            ));
        }
        if k > self.rows || n > self.cols {
            return Err(Error::invalid_shape(format!(
                "operands [{m} x {k}] . [{k} x {n}] exceed one {}x{} weight tile",
                self.rows, self.cols
            )));
        }

        // Phase 1: weight load. Weights shift in row by row from the top:
        // `rows` cycles for a full array (we charge the full array height,
        // matching the analytical model's R-cycle load phase).
        let mut pes = vec![vec![Pe::default(); self.cols]; self.rows];
        for (r, w_row) in weights.iter().enumerate() {
            for (c, &w) in w_row.iter().enumerate() {
                pes[r][c].weight = w;
            }
        }
        let load_cycles = Cycles::new(self.rows as u64);

        // Phase 2: skewed activation streaming. Activation row i enters PE
        // row r at cycle i + r; partial sums flow down one row per cycle and
        // exit below row `k-1`. Column c is additionally skewed by c cycles.
        let mut result = vec![vec![0i32; n]; m];
        let mut done = 0usize;
        let mut cycle: u64 = 0;
        // Upper bound keeps the loop finite even under a modeling bug.
        let bound = (m + self.rows + self.cols + 4) as u64 * 4;

        while done < m * n {
            // PEs update back-to-front so a value moves one hop per cycle.
            // 1. Collect outputs leaving the bottom of each used column.
            for c in 0..n {
                if let Some(psum) = pes[k - 1][c].psum.take() {
                    // Output for activation row: derive from timing: the
                    // psum that exits column c at this cycle belongs to the
                    // activation row that entered at cycle (cycle - (k-1) - c).
                    let row = cycle as i64 - (k as i64 - 1) - c as i64 - 1;
                    debug_assert!(row >= 0 && (row as usize) < m, "psum exit out of range");
                    result[row as usize][c] = psum;
                    done += 1;
                }
            }
            if done == m * n {
                break;
            }
            // 2. Shift psums down and activations right (bottom-up, right-left).
            for r in (0..k).rev() {
                for c in (0..n).rev() {
                    // Activation arriving from the left neighbour (or input edge).
                    let act_in = if c == 0 {
                        // Row r receives activation element a[i][r] at cycle i + r.
                        let i = cycle as i64 - r as i64;
                        if i >= 0 && (i as usize) < m {
                            Some(activations[i as usize][r])
                        } else {
                            None
                        }
                    } else {
                        pes[r][c - 1].act
                    };
                    // Partial sum arriving from above (or zero at the top edge).
                    let psum_in = if r == 0 {
                        act_in.map(|_| 0)
                    } else {
                        pes[r - 1][c].psum
                    };
                    pes[r][c].psum = match (act_in, psum_in) {
                        (Some(a), Some(p)) => Some(p + a * pes[r][c].weight),
                        _ => None,
                    };
                    pes[r][c].act = act_in;
                }
            }
            cycle += 1;
            if cycle > bound {
                return Err(Error::invalid_shape(
                    "cycle sim failed to drain within its cycle bound",
                ));
            }
        }

        Ok(CycleSimRun {
            result,
            load_cycles,
            compute_cycles: Cycles::new(cycle),
        })
    }
}

/// Reference matrix multiply used by tests.
pub fn matmul_reference(a: &[Vec<i32>], w: &[Vec<i32>]) -> Vec<Vec<i32>> {
    let m = a.len();
    let k = w.len();
    let n = w.first().map_or(0, Vec::len);
    let mut out = vec![vec![0i32; n]; m];
    for (i, a_row) in a.iter().enumerate() {
        for (j, out_ij) in out[i].iter_mut().enumerate() {
            *out_ij = (0..k).map(|x| a_row[x] * w[x][j]).sum();
        }
        let _ = i;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(m: usize, n: usize, seed: &mut u64) -> Vec<Vec<i32>> {
        // Small xorshift so the test has no external deps.
        let mut next = || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            (*seed % 17) as i32 - 8
        };
        (0..m).map(|_| (0..n).map(|_| next()).collect()).collect()
    }

    #[test]
    fn small_known_product() {
        let a = vec![vec![1, 0], vec![0, 1], vec![2, 3]];
        let w = vec![vec![4, 5], vec![6, 7]];
        let run = CycleSim::new(2, 2).unwrap().run(&a, &w).unwrap();
        assert_eq!(run.result(), matmul_reference(&a, &w).as_slice());
    }

    #[test]
    fn randomized_products_match_reference() {
        let mut seed = 0x1234_5678_9abc_def0;
        for (m, k, n) in [(1, 4, 4), (5, 3, 2), (8, 8, 8), (16, 7, 5), (3, 1, 1)] {
            let a = rand_mat(m, k, &mut seed);
            let w = rand_mat(k, n, &mut seed);
            let run = CycleSim::new(k.max(1), n.max(1)).unwrap().run(&a, &w).unwrap();
            assert_eq!(run.result(), matmul_reference(&a, &w).as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn cycle_count_matches_analytical_single_tile() {
        use crate::{analytical, config::SystolicConfig, Dataflow};
        use cimtpu_units::{DataType, GemmShape};

        let mut seed = 42;
        for (m, k, n) in [(4usize, 8usize, 8usize), (1, 8, 8), (10, 8, 8)] {
            let a = rand_mat(m, k, &mut seed);
            let w = rand_mat(k, n, &mut seed);
            let run = CycleSim::new(8, 8).unwrap().run(&a, &w).unwrap();

            let cfg = SystolicConfig::new(8, 8, Dataflow::WeightStationary)
                .with_weight_double_buffering(false);
            let t = analytical::gemm_timing(
                &cfg,
                GemmShape::new(m as u64, 8, 8).unwrap(),
                DataType::Int8,
            );
            // Analytical compute phase is m + R + C - 2; the cycle-level sim
            // must agree exactly when the tile fully occupies the array.
            assert_eq!(
                run.compute_cycles().get(),
                m as u64 + 8 + 8 - 2,
                "compute cycles for m={m}"
            );
            assert_eq!(run.total_cycles(), t.total(), "total for m={m}");
        }
    }

    #[test]
    fn rejects_ragged_and_oversized() {
        let sim = CycleSim::new(2, 2).unwrap();
        assert!(sim.run(&[vec![1, 2], vec![3]], &[vec![1, 2], vec![3, 4]]).is_err());
        assert!(sim
            .run(&[vec![1, 2, 3]], &[vec![1], vec![2], vec![3]])
            .is_err());
        assert!(CycleSim::new(0, 4).is_err());
        assert!(CycleSim::new(300, 4).is_err());
    }
}
