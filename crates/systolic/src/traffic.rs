//! SRAM traffic model for the systolic array.
//!
//! Counts the bytes moved between the local SRAM buffers (ifmap/filter/ofmap
//! in SCALE-Sim parlance) and the PE array. Activation rows are re-streamed
//! once per weight column-tile; weights are loaded once per tile; outputs
//! are written once per (m, n) element per k-fold (partial-sum write-back)
//! for weight-stationary dataflow.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Bytes, DataType, GemmShape};

use crate::config::{Dataflow, SystolicConfig};

/// Byte traffic between SRAM and the PE array for one GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmTraffic {
    activation_reads: Bytes,
    weight_reads: Bytes,
    output_writes: Bytes,
}

impl GemmTraffic {
    /// Activation bytes streamed into the array.
    pub fn activation_reads(&self) -> Bytes {
        self.activation_reads
    }

    /// Weight bytes loaded into the array.
    pub fn weight_reads(&self) -> Bytes {
        self.weight_reads
    }

    /// Output (incl. partial-sum) bytes written back.
    pub fn output_writes(&self) -> Bytes {
        self.output_writes
    }

    /// All traffic combined.
    pub fn total(&self) -> Bytes {
        self.activation_reads + self.weight_reads + self.output_writes
    }
}

pub(crate) fn gemm_traffic(
    config: &SystolicConfig,
    shape: GemmShape,
    dtype: DataType,
) -> GemmTraffic {
    let (r, c) = (config.rows(), config.cols());
    let (m, k, n) = (shape.m(), shape.k(), shape.n());
    let elem = dtype.size_bytes();
    // Accumulators are wider than operands (INT32/FP32 partial sums).
    let acc_elem = 4u64;

    match config.dataflow() {
        Dataflow::WeightStationary => {
            let fold_k = k.div_ceil(r);
            let fold_n = n.div_ceil(c);
            GemmTraffic {
                // Every activation row re-streamed for each column tile.
                activation_reads: Bytes::new(m * k * fold_n * elem),
                // Each weight loaded exactly once.
                weight_reads: Bytes::new(k * n * elem),
                // Partial sums written back once per k-fold.
                output_writes: Bytes::new(m * n * fold_k * acc_elem),
            }
        }
        Dataflow::OutputStationary => {
            let fold_m = m.div_ceil(r);
            let fold_n = n.div_ceil(c);
            GemmTraffic {
                activation_reads: Bytes::new(m * k * fold_n * elem),
                weight_reads: Bytes::new(k * n * fold_m * elem),
                output_writes: Bytes::new(m * n * acc_elem),
            }
        }
        Dataflow::InputStationary => {
            let fold_k = k.div_ceil(c);
            GemmTraffic {
                activation_reads: Bytes::new(m * k * elem),
                weight_reads: Bytes::new(k * n * m.div_ceil(r) * elem),
                output_writes: Bytes::new(m * n * fold_k * acc_elem),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystolicConfig;

    #[test]
    fn ws_weights_read_once() {
        let cfg = SystolicConfig::tpuv4i_mxu();
        let shape = GemmShape::new(64, 512, 1024).unwrap();
        let t = gemm_traffic(&cfg, shape, DataType::Int8);
        assert_eq!(t.weight_reads(), shape.weight_bytes(DataType::Int8));
    }

    #[test]
    fn ws_activations_restreamed_per_column_tile() {
        let cfg = SystolicConfig::tpuv4i_mxu();
        let shape = GemmShape::new(64, 128, 512).unwrap(); // 4 column tiles
        let t = gemm_traffic(&cfg, shape, DataType::Int8);
        assert_eq!(t.activation_reads().get(), 64 * 128 * 4);
    }

    #[test]
    fn os_outputs_written_once() {
        let cfg = SystolicConfig::new(16, 16, Dataflow::OutputStationary);
        let shape = GemmShape::new(64, 1024, 64).unwrap();
        let t = gemm_traffic(&cfg, shape, DataType::Int8);
        assert_eq!(t.output_writes().get(), 64 * 64 * 4);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let cfg = SystolicConfig::tpuv4i_mxu();
        let shape = GemmShape::new(8, 7168, 7168).unwrap();
        let t = gemm_traffic(&cfg, shape, DataType::Int8);
        assert_eq!(
            t.total(),
            t.activation_reads() + t.weight_reads() + t.output_writes()
        );
    }
}
