//! Cycle-level functional simulator for output-stationary arrays.
//!
//! Complements [`cycle_sim`](crate::cycle_sim) (weight-stationary): here
//! each PE *owns one output element*; activations stream in from the left,
//! weights from the top, and the operands for `c[i][j] += a[i][t]·w[t][j]`
//! meet at PE `(i, j)` at cycle `t + i + j`. After the streaming phase the
//! accumulated outputs drain down the columns.
//!
//! Used to validate the [`Dataflow::OutputStationary`] analytical equation
//! (`k + R + C − 2` streaming + `R` drain per tile) and the numerical
//! correctness of the dataflow.
//!
//! [`Dataflow::OutputStationary`]: crate::Dataflow::OutputStationary
//!
//! # Examples
//!
//! ```
//! use cimtpu_systolic::cycle_sim_os::OsCycleSim;
//!
//! let a = vec![vec![1i32, 2], vec![3, 4]];
//! let w = vec![vec![5i32, 6], vec![7, 8]];
//! let run = OsCycleSim::new(2, 2)?.run(&a, &w)?;
//! assert_eq!(run.result(), &[vec![19, 22], vec![43, 50]]);
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

use cimtpu_units::{Cycles, Error, Result};

/// A small output-stationary systolic array simulated at cycle granularity.
#[derive(Debug, Clone)]
pub struct OsCycleSim {
    rows: usize,
    cols: usize,
}

/// Result of one [`OsCycleSim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsCycleSimRun {
    result: Vec<Vec<i32>>,
    stream_cycles: Cycles,
    drain_cycles: Cycles,
}

impl OsCycleSimRun {
    /// The computed `[m × n]` output matrix.
    pub fn result(&self) -> &[Vec<i32>] {
        &self.result
    }

    /// Cycles of the skewed operand-streaming phase.
    pub fn stream_cycles(&self) -> Cycles {
        self.stream_cycles
    }

    /// Cycles to drain accumulated outputs down the columns.
    pub fn drain_cycles(&self) -> Cycles {
        self.drain_cycles
    }

    /// Total cycles.
    pub fn total_cycles(&self) -> Cycles {
        self.stream_cycles + self.drain_cycles
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct OsPe {
    acc: i32,
    /// Activation register (flows left → right).
    act: Option<i32>,
    /// Weight register (flows top → bottom).
    weight: Option<i32>,
}

impl OsCycleSim {
    /// Creates a simulator for an `rows × cols` array.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero dimensions or arrays larger
    /// than 256×256.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(Error::invalid_config("OS cycle sim dimensions must be non-zero"));
        }
        if rows > 256 || cols > 256 {
            return Err(Error::invalid_config(
                "OS cycle sim is limited to arrays of at most 256x256",
            ));
        }
        Ok(OsCycleSim { rows, cols })
    }

    /// Runs `activations [m × k] · weights [k × n]` through the array.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if operands are empty, ragged, or
    /// exceed one output tile (`m > rows` or `n > cols`).
    pub fn run(&self, activations: &[Vec<i32>], weights: &[Vec<i32>]) -> Result<OsCycleSimRun> {
        let m = activations.len();
        let k = weights.len();
        let n = weights.first().map_or(0, Vec::len);
        if m == 0 || k == 0 || n == 0 {
            return Err(Error::invalid_shape("OS cycle sim operands must be non-empty"));
        }
        if activations.iter().any(|r| r.len() != k) || weights.iter().any(|r| r.len() != n) {
            return Err(Error::invalid_shape(
                "OS cycle sim operands must be rectangular and conformable",
            ));
        }
        if m > self.rows || n > self.cols {
            return Err(Error::invalid_shape(format!(
                "outputs [{m} x {n}] exceed one {}x{} output tile",
                self.rows, self.cols
            )));
        }

        // Phase 1: skewed streaming. Operands physically hop one PE per
        // cycle; PE (i, j) multiplies whenever both registers are full.
        let mut pes = vec![vec![OsPe::default(); n]; m];
        let stream_total = k + m + n - 2;
        for cycle in 0..stream_total as i64 {
            // Back-to-front so values move one hop per cycle.
            for i in (0..m).rev() {
                for j in (0..n).rev() {
                    let act_in = if j == 0 {
                        // Row i receives a[i][t] at cycle t + i.
                        let t = cycle - i as i64;
                        if t >= 0 && (t as usize) < k {
                            Some(activations[i][t as usize])
                        } else {
                            None
                        }
                    } else {
                        pes[i][j - 1].act
                    };
                    let w_in = if i == 0 {
                        // Column j receives w[t][j] at cycle t + j.
                        let t = cycle - j as i64;
                        if t >= 0 && (t as usize) < k {
                            Some(weights[t as usize][j])
                        } else {
                            None
                        }
                    } else {
                        pes[i - 1][j].weight
                    };
                    if let (Some(a), Some(w)) = (act_in, w_in) {
                        pes[i][j].acc += a * w;
                    }
                    pes[i][j].act = act_in;
                    pes[i][j].weight = w_in;
                }
            }
        }

        // Phase 2: drain accumulators down the columns (one hop per cycle;
        // the full array height is charged, matching the analytical model).
        let result: Vec<Vec<i32>> = pes
            .iter()
            .map(|row| row.iter().map(|pe| pe.acc).collect())
            .collect();
        Ok(OsCycleSimRun {
            result,
            stream_cycles: Cycles::new(stream_total as u64),
            drain_cycles: Cycles::new(self.rows as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_sim::matmul_reference;

    fn rand_mat(m: usize, n: usize, seed: &mut u64) -> Vec<Vec<i32>> {
        let mut next = || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            (*seed % 19) as i32 - 9
        };
        (0..m).map(|_| (0..n).map(|_| next()).collect()).collect()
    }

    #[test]
    fn known_product() {
        let a = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let w = vec![vec![7, 8], vec![9, 10], vec![11, 12]];
        let run = OsCycleSim::new(2, 2).unwrap().run(&a, &w).unwrap();
        assert_eq!(run.result(), matmul_reference(&a, &w).as_slice());
    }

    #[test]
    fn randomized_products_match_reference() {
        let mut seed = 0xfeed_beef_cafe_d00d;
        for (m, k, n) in [(1, 1, 1), (4, 9, 3), (8, 8, 8), (12, 5, 7), (16, 32, 16)] {
            let a = rand_mat(m, k, &mut seed);
            let w = rand_mat(k, n, &mut seed);
            let run = OsCycleSim::new(m, n).unwrap().run(&a, &w).unwrap();
            assert_eq!(run.result(), matmul_reference(&a, &w).as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn cycle_count_matches_analytical_single_tile() {
        use crate::{analytical, config::SystolicConfig, Dataflow};
        use cimtpu_units::{DataType, GemmShape};

        let mut seed = 99;
        for (m, k, n) in [(8usize, 16usize, 8usize), (8, 1, 8), (8, 100, 8)] {
            let a = rand_mat(m, k, &mut seed);
            let w = rand_mat(k, n, &mut seed);
            let run = OsCycleSim::new(8, 8).unwrap().run(&a, &w).unwrap();
            let cfg = SystolicConfig::new(8, 8, Dataflow::OutputStationary);
            let t = analytical::gemm_timing(
                &cfg,
                GemmShape::new(m as u64, k as u64, n as u64).unwrap(),
                DataType::Int8,
            );
            // Full-occupancy tile: analytical = k + R + C - 2 + R.
            assert_eq!(run.total_cycles(), t.total(), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn rejects_bad_operands() {
        let sim = OsCycleSim::new(2, 2).unwrap();
        assert!(sim.run(&[], &[vec![1]]).is_err());
        assert!(sim
            .run(&[vec![1, 2], vec![3, 4], vec![5, 6]], &[vec![1], vec![2]])
            .is_err()); // m > rows
        assert!(OsCycleSim::new(0, 2).is_err());
        assert!(OsCycleSim::new(2, 300).is_err());
    }
}
