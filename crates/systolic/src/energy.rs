//! Energy and area model for the digital systolic MXU.
//!
//! Constants are calibrated to the paper's Table II digital column, which
//! the authors obtained from a Gemmini-generated 128×128 array after
//! place-and-route in TSMC 22 nm: **0.77 TOPS/W** and **0.648 TOPS/mm²**
//! at INT8 and full utilization (~1.05 GHz). Only these aggregate figures
//! flow into the system model, so an analytical event-energy model is an
//! adequate substitute for the original P&R flow (see DESIGN.md §2).

use serde::{Deserialize, Serialize};

use cimtpu_units::{Area, Cycles, DataType, Frequency, GemmShape, Joules, Seconds, Watts};

use crate::analytical::GemmTiming;
use crate::config::SystolicConfig;
use crate::traffic::GemmTraffic;

/// Per-event energy and per-MAC area constants for a digital MAC array.
///
/// # Examples
///
/// ```
/// use cimtpu_systolic::EnergyModel;
/// use cimtpu_units::DataType;
/// let m = EnergyModel::tsmc22_digital();
/// assert!(m.mac_energy(DataType::Bf16) > m.mac_energy(DataType::Int8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Dynamic energy of one INT8 MAC (multiply + accumulate + local reg).
    mac_int8: Joules,
    /// Dynamic energy of one BF16 MAC.
    mac_bf16: Joules,
    /// Energy per weight byte loaded into PE registers (SRAM read +
    /// distribution network + register write).
    weight_load_per_byte: Joules,
    /// Energy per activation/output byte streamed through the edge of the
    /// array.
    io_per_byte: Joules,
    /// Leakage + clock-tree power per MAC unit.
    static_per_mac: Watts,
    /// Layout area per MAC unit.
    area_per_mac: Area,
}

impl EnergyModel {
    /// Calibration reference clock for the Table II numbers.
    pub const REFERENCE_CLOCK_GHZ: f64 = 1.05;

    /// The TSMC 22 nm digital MAC array calibration (paper Table II).
    ///
    /// At full utilization and 1.05 GHz a 128×128 array evaluates to
    /// 0.77 TOPS/W and 0.648 TOPS/mm² with these constants.
    pub fn tsmc22_digital() -> Self {
        EnergyModel {
            mac_int8: Joules::from_picojoules(2.18),
            mac_bf16: Joules::from_picojoules(3.9),
            weight_load_per_byte: Joules::from_picojoules(2.0),
            io_per_byte: Joules::from_picojoules(0.6),
            static_per_mac: Watts::from_milliwatts(0.437),
            area_per_mac: Area::from_um2(3241.0),
        }
    }

    /// Dynamic energy of one MAC at the given precision.
    pub fn mac_energy(&self, dtype: DataType) -> Joules {
        match dtype {
            DataType::Int8 => self.mac_int8,
            DataType::Bf16 => self.mac_bf16,
            // FP32 runs as multi-pass BF16 on the MXU datapath.
            DataType::Fp32 => self.mac_bf16 * 4.0,
        }
    }

    /// Energy per weight byte loaded into the array.
    pub fn weight_load_per_byte(&self) -> Joules {
        self.weight_load_per_byte
    }

    /// Energy per streamed I/O byte.
    pub fn io_per_byte(&self) -> Joules {
        self.io_per_byte
    }

    /// Static power for an array of `macs` MAC units.
    pub fn static_power(&self, macs: u64) -> Watts {
        Watts::new(self.static_per_mac.get() * macs as f64)
    }

    /// Area of an array of `macs` MAC units.
    pub fn array_area(&self, macs: u64) -> Area {
        Area::new(self.area_per_mac.as_mm2() * macs as f64)
    }

    /// Overrides the static power per MAC (for ablations).
    #[must_use]
    pub fn with_static_per_mac(mut self, p: Watts) -> Self {
        self.static_per_mac = p;
        self
    }

    /// Full energy accounting of one GEMM given its timing and traffic.
    pub(crate) fn gemm_energy(
        &self,
        config: &SystolicConfig,
        shape: GemmShape,
        dtype: DataType,
        timing: &GemmTiming,
        traffic: &GemmTraffic,
    ) -> GemmEnergy {
        let mac = Joules::new(self.mac_energy(dtype).get() * shape.macs() as f64);
        let weight_load =
            Joules::new(self.weight_load_per_byte.get() * traffic.weight_reads().get() as f64);
        let io = Joules::new(
            self.io_per_byte.get()
                * (traffic.activation_reads() + traffic.output_writes()).get() as f64,
        );
        GemmEnergy {
            mac,
            weight_load,
            io,
            static_power: self.static_power(config.macs()),
            busy_cycles: timing.total(),
        }
    }
}

/// Energy breakdown of one GEMM on a digital MXU.
///
/// The static component depends on how long the array was busy, so it is
/// finalized with a clock via [`GemmEnergy::total_at`]; [`GemmEnergy::total`]
/// uses the calibration clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemmEnergy {
    mac: Joules,
    weight_load: Joules,
    io: Joules,
    static_power: Watts,
    busy_cycles: Cycles,
}

impl GemmEnergy {
    /// Dynamic MAC energy.
    pub fn mac(&self) -> Joules {
        self.mac
    }

    /// Weight-load energy.
    pub fn weight_load(&self) -> Joules {
        self.weight_load
    }

    /// Streaming I/O energy.
    pub fn io(&self) -> Joules {
        self.io
    }

    /// Static (leakage) energy over the busy window at clock `clock`.
    pub fn static_energy_at(&self, clock: Frequency) -> Joules {
        self.static_power.for_duration(self.busy_cycles.at(clock))
    }

    /// Total energy at clock `clock`.
    pub fn total_at(&self, clock: Frequency) -> Joules {
        self.mac + self.weight_load + self.io + self.static_energy_at(clock)
    }

    /// Total energy at the calibration clock (1.05 GHz).
    pub fn total(&self) -> Joules {
        self.total_at(Frequency::from_ghz(EnergyModel::REFERENCE_CLOCK_GHZ))
    }

    /// Busy window used for static-energy accounting, in cycles.
    pub fn busy_cycles(&self) -> Cycles {
        self.busy_cycles
    }

    /// Busy window at the calibration clock.
    pub fn busy_time(&self) -> Seconds {
        self.busy_cycles
            .at(Frequency::from_ghz(EnergyModel::REFERENCE_CLOCK_GHZ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SystolicArray, SystolicConfig};

    #[test]
    fn static_energy_dominates_at_low_utilization() {
        let mxu = SystolicArray::new(SystolicConfig::tpuv4i_mxu()).unwrap();
        let e = mxu.gemm_energy(GemmShape::gemv(7168, 7168).unwrap(), DataType::Int8);
        let clock = Frequency::from_ghz(1.05);
        // A GEMV keeps the array busy for many cycles doing few MACs:
        // leakage + weight loads dwarf MAC energy.
        assert!(e.static_energy_at(clock) + e.weight_load() > e.mac() * 5.0);
    }

    #[test]
    fn mac_energy_dominates_at_high_utilization() {
        let mxu = SystolicArray::new(SystolicConfig::tpuv4i_mxu()).unwrap();
        let e = mxu.gemm_energy(
            GemmShape::new(1 << 15, 4096, 4096).unwrap(),
            DataType::Int8,
        );
        let clock = Frequency::from_ghz(1.05);
        assert!(e.mac() > e.static_energy_at(clock));
        assert!(e.mac() > e.weight_load());
    }

    #[test]
    fn totals_are_additive() {
        let mxu = SystolicArray::new(SystolicConfig::tpuv4i_mxu()).unwrap();
        let e = mxu.gemm_energy(GemmShape::new(128, 128, 128).unwrap(), DataType::Int8);
        let clock = Frequency::from_ghz(1.05);
        let sum = e.mac() + e.weight_load() + e.io() + e.static_energy_at(clock);
        assert!((sum.get() - e.total_at(clock).get()).abs() < 1e-18);
    }
}
