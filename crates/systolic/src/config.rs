//! Systolic array geometry and dataflow configuration.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Error, Result};

/// Which operand stays resident in the PE array.
///
/// The naming follows SCALE-Sim / Eyeriss taxonomy. TPU MXUs are
/// weight-stationary; the other dataflows are provided for ablation studies.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Weights are pre-loaded into PEs; activations stream through
    /// (TPU-style). Requires a weight-load phase per tile.
    #[default]
    WeightStationary,
    /// Each PE accumulates one output element; both operands stream.
    OutputStationary,
    /// Activations are pre-loaded; weights stream through.
    InputStationary,
}

impl Dataflow {
    /// Short label used in reports (`"WS"`, `"OS"`, `"IS"`).
    pub const fn label(self) -> &'static str {
        match self {
            Dataflow::WeightStationary => "WS",
            Dataflow::OutputStationary => "OS",
            Dataflow::InputStationary => "IS",
        }
    }
}

/// Geometry of a rectangular systolic array.
///
/// # Examples
///
/// ```
/// use cimtpu_systolic::{SystolicConfig, Dataflow};
/// let cfg = SystolicConfig::new(128, 128, Dataflow::WeightStationary);
/// assert_eq!(cfg.macs(), 16384);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystolicConfig {
    rows: u64,
    cols: u64,
    dataflow: Dataflow,
    weight_double_buffering: bool,
}

impl SystolicConfig {
    /// Creates a configuration with weight double-buffering enabled.
    pub fn new(rows: u64, cols: u64, dataflow: Dataflow) -> Self {
        SystolicConfig {
            rows,
            cols,
            dataflow,
            weight_double_buffering: true,
        }
    }

    /// The 128×128 weight-stationary MXU of TPUv4i.
    pub fn tpuv4i_mxu() -> Self {
        SystolicConfig::new(128, 128, Dataflow::WeightStationary)
    }

    /// Disables (or enables) weight double-buffering.
    ///
    /// Without double buffering the weight-load phase of every tile is fully
    /// exposed; with it, loading the next tile's weights overlaps with the
    /// current tile's compute (the load of the *first* tile is always
    /// exposed).
    #[must_use]
    pub fn with_weight_double_buffering(mut self, enabled: bool) -> Self {
        self.weight_double_buffering = enabled;
        self
    }

    /// Number of PE rows (contraction dimension for WS).
    pub const fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of PE columns (output-channel dimension for WS).
    pub const fn cols(&self) -> u64 {
        self.cols
    }

    /// The dataflow.
    pub const fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// Whether weight loads overlap with compute.
    pub const fn weight_double_buffering(&self) -> bool {
        self.weight_double_buffering
    }

    /// Total MAC units.
    pub const fn macs(&self) -> u64 {
        self.rows * self.cols
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if either dimension is zero.
    pub fn validate(&self) -> Result<()> {
        if self.rows == 0 || self.cols == 0 {
            return Err(Error::invalid_config(format!(
                "systolic array dimensions must be non-zero, got {}x{}",
                self.rows, self.cols
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpuv4i_preset_matches_paper() {
        let c = SystolicConfig::tpuv4i_mxu();
        assert_eq!((c.rows(), c.cols()), (128, 128));
        assert_eq!(c.dataflow(), Dataflow::WeightStationary);
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(SystolicConfig::new(0, 128, Dataflow::WeightStationary)
            .validate()
            .is_err());
        assert!(SystolicConfig::new(128, 0, Dataflow::OutputStationary)
            .validate()
            .is_err());
    }

    #[test]
    fn dataflow_labels() {
        assert_eq!(Dataflow::WeightStationary.label(), "WS");
        assert_eq!(Dataflow::OutputStationary.label(), "OS");
        assert_eq!(Dataflow::InputStationary.label(), "IS");
    }
}
