//! SCALE-Sim-style analytical cycle model.
//!
//! The equations follow Samajdar et al. (ISPASS 2020). For a weight-
//! stationary `R×C` array running `[m×k]·[k×n]`:
//!
//! - the weight matrix is folded into `⌈k/R⌉·⌈n/C⌉` tiles,
//! - loading one tile of weights takes `R` cycles (row-parallel shift-in),
//! - streaming `m` activation rows through a loaded tile takes
//!   `m + R + C − 2` cycles (skewed pipeline fill + drain),
//! - with weight double buffering the next load hides under the current
//!   tile's compute; only the first load is exposed.
//!
//! This is precisely why a decode GEMV (`m = 1`) is slow on a systolic
//! array: every tile pays `R + C − 1` fill cycles and `R` load cycles to
//! produce a single row of outputs — the observation at the heart of the
//! paper's Section IV-B.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Cycles, DataType, GemmShape};

use crate::config::{Dataflow, SystolicConfig};

/// Cycle-count breakdown of one GEMM on a systolic array.
///
/// Produced by [`SystolicArray::gemm_timing`](crate::SystolicArray::gemm_timing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemmTiming {
    shape: GemmShape,
    total: Cycles,
    exposed_weight_load: Cycles,
    compute: Cycles,
    tiles: u64,
    pe_count: u64,
}

impl GemmTiming {
    /// The GEMM shape this timing describes.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// End-to-end cycles, including exposed weight loads and fill/drain.
    pub fn total(&self) -> Cycles {
        self.total
    }

    /// Weight-load cycles *not* hidden under compute.
    pub fn exposed_weight_load(&self) -> Cycles {
        self.exposed_weight_load
    }

    /// Cycles spent in the streaming/compute phase (incl. fill/drain skew).
    pub fn compute(&self) -> Cycles {
        self.compute
    }

    /// Number of weight (or output) tiles the operation was folded into.
    pub fn tiles(&self) -> u64 {
        self.tiles
    }

    /// Fraction of MAC slots that performed useful work, in `(0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total == Cycles::ZERO {
            return 0.0;
        }
        self.shape.macs() as f64 / (self.total.get() as f64 * self.pe_count as f64)
    }
}

fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Computes the analytical timing of `shape` on `config`.
///
/// `dtype` is accepted for interface symmetry with the CIM model; the TPU
/// MXU datapath sustains one MAC per PE per cycle for both INT8 and BF16,
/// so the count is precision-independent.
pub(crate) fn gemm_timing(
    config: &SystolicConfig,
    shape: GemmShape,
    _dtype: DataType,
) -> GemmTiming {
    let (r, c) = (config.rows(), config.cols());
    let (m, k, n) = (shape.m(), shape.k(), shape.n());

    match config.dataflow() {
        Dataflow::WeightStationary => {
            let tiles = div_ceil(k, r) * div_ceil(n, c);
            // Fully serialized: load, fill, drain for every tile.
            let compute_per_tile = m + r + c - 2;
            let serialized = (
                tiles * (r + compute_per_tile),
                tiles * r,
                tiles * compute_per_tile,
            );
            let (total, exposed, compute) = if config.weight_double_buffering() {
                // TPU-style continuous streaming: per-PE shadow weight
                // registers let consecutive tiles' activations follow each
                // other back-to-back, so the R+C-2 pipeline skew is paid
                // once. Each tile then takes max(m, R) cycles: m to stream
                // its rows, or R to refill the shadow weights — whichever
                // is slower. This weight-refill floor is exactly the
                // "frequent weight updates" cost the paper attributes to
                // low-reuse GEMM/GEMV on systolic arrays.
                let per_tile = m.max(r);
                let fill = r + c - 2;
                let streaming = (
                    r + fill + tiles * per_tile,
                    r + tiles * (per_tile - m),
                    fill + tiles * m,
                );
                // Double buffering is optional: for a single short tile the
                // serialized schedule can beat streaming (no refill floor),
                // and the controller would choose it.
                if serialized.0 < streaming.0 {
                    serialized
                } else {
                    streaming
                }
            } else {
                serialized
            };
            GemmTiming {
                shape,
                total: Cycles::new(total),
                exposed_weight_load: Cycles::new(exposed),
                compute: Cycles::new(compute),
                tiles,
                pe_count: config.macs(),
            }
        }
        Dataflow::OutputStationary => {
            // Each PE owns one output; both operands stream for k steps,
            // then results are drained through the column tree.
            let tiles = div_ceil(m, r) * div_ceil(n, c);
            let per_tile = k + r + c - 2 + r; // stream + skew + drain
            GemmTiming {
                shape,
                total: Cycles::new(tiles * per_tile),
                exposed_weight_load: Cycles::ZERO,
                compute: Cycles::new(tiles * per_tile),
                tiles,
                pe_count: config.macs(),
            }
        }
        Dataflow::InputStationary => {
            // Activations resident (R rows of m, C cols of k); weights stream
            // for n steps per tile.
            let tiles = div_ceil(m, r) * div_ceil(k, c);
            let compute_per_tile = n + r + c - 2;
            let (total, exposed) = if config.weight_double_buffering() {
                let per_tile = compute_per_tile.max(r);
                (
                    r + tiles * per_tile,
                    r + tiles * (per_tile - compute_per_tile),
                )
            } else {
                (tiles * (r + compute_per_tile), tiles * r)
            };
            GemmTiming {
                shape,
                total: Cycles::new(total),
                exposed_weight_load: Cycles::new(exposed),
                compute: Cycles::new(tiles * compute_per_tile),
                tiles,
                pe_count: config.macs(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimtpu_units::GemmShape;

    fn ws(r: u64, c: u64) -> SystolicConfig {
        SystolicConfig::new(r, c, Dataflow::WeightStationary)
    }

    #[test]
    fn single_tile_ws_formula() {
        // 8x8 array, one 8x8 weight tile, 4 activation rows, no dbuf:
        // load 8 + (4 + 8 + 8 - 2) = 26 cycles.
        let cfg = ws(8, 8).with_weight_double_buffering(false);
        let t = gemm_timing(&cfg, GemmShape::new(4, 8, 8).unwrap(), DataType::Int8);
        assert_eq!(t.total(), Cycles::new(26));
        assert_eq!(t.exposed_weight_load(), Cycles::new(8));
        assert_eq!(t.tiles(), 1);
    }

    #[test]
    fn double_buffering_hides_later_loads() {
        // Two column tiles; with dbuf the 2nd load hides under tile 1 and
        // the pipeline skew is paid once.
        let shape = GemmShape::new(100, 8, 16).unwrap();
        let no_db = gemm_timing(
            &ws(8, 8).with_weight_double_buffering(false),
            shape,
            DataType::Int8,
        );
        let db = gemm_timing(&ws(8, 8), shape, DataType::Int8);
        assert!(db.total() < no_db.total());
        // m=100 >= R=8, so only the initial load is exposed:
        // total = 8 + 14 + 2*100 = 222.
        assert_eq!(db.total(), Cycles::new(222));
        assert_eq!(db.exposed_weight_load(), Cycles::new(8));
    }

    #[test]
    fn utilization_approaches_one_for_huge_m() {
        let t = gemm_timing(
            &ws(128, 128),
            GemmShape::new(1 << 16, 128, 128).unwrap(),
            DataType::Int8,
        );
        assert!(t.utilization() > 0.99);
    }

    #[test]
    fn gemv_pays_load_floor_every_tile() {
        let cfg = ws(128, 128);
        let t = gemm_timing(&cfg, GemmShape::gemv(128, 128).unwrap(), DataType::Int8);
        // m=1, single tile: the serialized schedule (load 128 + 1 + 254)
        // beats streaming (which would pay the 128-cycle refill floor), and
        // the controller picks it.
        assert_eq!(t.total(), Cycles::new(128 + 1 + 254));
        assert!(t.utilization() < 0.01);

        // A wide GEMV pays the 128-cycle refill floor on every tile once
        // streaming amortizes the skew across tiles.
        let wide = gemm_timing(&cfg, GemmShape::gemv(128, 1280).unwrap(), DataType::Int8);
        assert_eq!(wide.total(), Cycles::new(128 + 254 + 10 * 128));
        // Streaming beats serializing all ten tiles.
        assert!(wide.total().get() < 10 * (128 + 255));
    }

    #[test]
    fn os_has_no_weight_load_phase() {
        let cfg = SystolicConfig::new(8, 8, Dataflow::OutputStationary);
        let t = gemm_timing(&cfg, GemmShape::new(8, 32, 8).unwrap(), DataType::Int8);
        assert_eq!(t.exposed_weight_load(), Cycles::ZERO);
        // one tile: 32 + 8 + 8 - 2 + 8 = 54
        assert_eq!(t.total(), Cycles::new(54));
    }

    #[test]
    fn is_tiles_over_m_and_k() {
        let cfg = SystolicConfig::new(8, 8, Dataflow::InputStationary)
            .with_weight_double_buffering(false);
        let t = gemm_timing(&cfg, GemmShape::new(16, 16, 4).unwrap(), DataType::Int8);
        assert_eq!(t.tiles(), 4);
    }

    #[test]
    fn work_conservation_under_tiling() {
        // Total compute cycles scale with tiles; utilization never exceeds 1.
        for (m, k, n) in [(1, 7168, 7168), (8, 512, 2048), (4096, 4096, 4096)] {
            let t = gemm_timing(
                &ws(128, 128),
                GemmShape::new(m, k, n).unwrap(),
                DataType::Int8,
            );
            assert!(t.utilization() <= 1.0 + 1e-12);
            assert!(t.total() >= Cycles::new(shape_min_cycles(m, k, n)));
        }
    }

    fn shape_min_cycles(m: u64, k: u64, n: u64) -> u64 {
        // Ideal lower bound: macs / pe_count.
        (m * k * n).div_ceil(128 * 128)
    }
}
