//! Property-based tests of the systolic substrate.

#![cfg(test)]

use proptest::prelude::*;

use cimtpu_units::{DataType, GemmShape};

use crate::cycle_sim::{matmul_reference, CycleSim};
use crate::cycle_sim_os::OsCycleSim;
use crate::{Dataflow, SystolicArray, SystolicConfig};

fn shape_strategy() -> impl Strategy<Value = GemmShape> {
    (1u64..2048, 1u64..4096, 1u64..4096)
        .prop_map(|(m, k, n)| GemmShape::new(m, k, n).expect("non-zero dims"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every dataflow accounts for at least the ideal MAC count.
    #[test]
    fn all_dataflows_conserve_work(
        shape in shape_strategy(),
        dataflow_idx in 0usize..3,
    ) {
        let dataflow = [
            Dataflow::WeightStationary,
            Dataflow::OutputStationary,
            Dataflow::InputStationary,
        ][dataflow_idx];
        let array = SystolicArray::new(SystolicConfig::new(128, 128, dataflow))
            .expect("valid config");
        let t = array.gemm_timing(shape, DataType::Int8);
        prop_assert!(t.utilization() <= 1.0 + 1e-12, "{shape} on {dataflow:?}");
        prop_assert!(t.total().get() >= shape.macs().div_ceil(128 * 128));
    }

    /// Double buffering never hurts.
    #[test]
    fn double_buffering_never_hurts(shape in shape_strategy()) {
        let with = SystolicArray::new(SystolicConfig::tpuv4i_mxu()).expect("valid");
        let without = SystolicArray::new(
            SystolicConfig::tpuv4i_mxu().with_weight_double_buffering(false),
        )
        .expect("valid");
        prop_assert!(
            with.gemm_timing(shape, DataType::Int8).total()
                <= without.gemm_timing(shape, DataType::Int8).total()
        );
    }

    /// SRAM traffic at least covers each operand once.
    #[test]
    fn traffic_lower_bounds(shape in shape_strategy()) {
        let array = SystolicArray::new(SystolicConfig::tpuv4i_mxu()).expect("valid");
        let t = array.gemm_traffic(shape, DataType::Int8);
        prop_assert!(t.weight_reads() >= shape.weight_bytes(DataType::Int8));
        prop_assert!(t.activation_reads() >= shape.activation_bytes(DataType::Int8));
        prop_assert!(t.output_writes().get() >= shape.m() * shape.n());
    }

    /// The WS and OS cycle-level simulators agree with each other and the
    /// integer reference on random small matrices.
    #[test]
    fn cycle_sims_agree(
        m in 1usize..10,
        k in 1usize..12,
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 15) as i32 - 7
        };
        let a: Vec<Vec<i32>> = (0..m).map(|_| (0..k).map(|_| next()).collect()).collect();
        let w: Vec<Vec<i32>> = (0..k).map(|_| (0..n).map(|_| next()).collect()).collect();

        let reference = matmul_reference(&a, &w);
        let ws = CycleSim::new(k, n).expect("dims").run(&a, &w).expect("operands");
        let os = OsCycleSim::new(m, n).expect("dims").run(&a, &w).expect("operands");
        prop_assert_eq!(ws.result(), reference.as_slice());
        prop_assert_eq!(os.result(), reference.as_slice());
    }

    /// Energy totals are positive and monotone in the MAC count.
    #[test]
    fn energy_positive_and_monotone(shape in shape_strategy()) {
        let array = SystolicArray::new(SystolicConfig::tpuv4i_mxu()).expect("valid");
        let e = array.gemm_energy(shape, DataType::Int8);
        prop_assert!(e.total().get() > 0.0);
        let doubled = shape.with_m(shape.m() * 2).expect("non-zero");
        let e2 = array.gemm_energy(doubled, DataType::Int8);
        prop_assert!(e2.mac() > e.mac());
    }
}
