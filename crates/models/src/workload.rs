//! A named list of operators, structured into phase-tagged segments.

use serde::{Deserialize, Serialize};

use cimtpu_units::Bytes;

use crate::op::{OpCategory, OpInstance};
use crate::phase::Phase;

/// Boundary record of one segment: ops `[start, end)` of the flat list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SegmentMeta {
    name: String,
    phase: Phase,
    start: usize,
    end: usize,
}

/// A borrowed view of one workload segment: a named, phase-tagged run of
/// consecutive operators.
#[derive(Debug, Clone, Copy)]
pub struct Segment<'a> {
    name: &'a str,
    phase: Phase,
    ops: &'a [OpInstance],
}

impl<'a> Segment<'a> {
    /// The segment name (e.g. `"attention"`).
    pub fn name(&self) -> &'a str {
        self.name
    }

    /// The serving phase this segment belongs to.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The segment's operators, in execution order.
    pub fn ops(&self) -> &'a [OpInstance] {
        self.ops
    }

    /// Total MACs across the segment's operators and repetitions.
    pub fn total_macs(&self) -> u64 {
        self.ops.iter().map(OpInstance::total_macs).sum()
    }

    /// Total unique main-memory traffic of the segment.
    pub fn main_memory_bytes(&self) -> Bytes {
        self.ops
            .iter()
            .map(|i| i.op().main_memory_bytes() * i.count())
            .sum()
    }

    /// Total operator executions (repetitions included).
    pub fn op_executions(&self) -> u64 {
        self.ops.iter().map(OpInstance::count).sum()
    }
}

/// A workload: an ordered list of [`OpInstance`]s, partitioned into named
/// segments tagged with a serving [`Phase`].
///
/// The flat operator list is the single source of truth — [`ops`](Workload::ops)
/// returns exactly the same slice whether or not the builder opened
/// segments, so per-operator simulation is unaffected by segmentation.
/// Segments are contiguous, non-overlapping, and cover the whole list;
/// operators pushed before the first [`begin_segment`](Workload::begin_segment)
/// call land in an implicit `"main"` segment of phase [`Phase::PrePost`].
///
/// # Examples
///
/// ```
/// use cimtpu_models::{presets, Phase};
/// let w = presets::dit_xl_2().block(8, 512)?;
/// assert!(w.total_macs() > 0);
/// assert!(w.ops().len() > 10);
/// // Segment totals partition the flat totals exactly.
/// let seg_macs: u64 = w.segments().map(|s| s.total_macs()).sum();
/// assert_eq!(seg_macs, w.total_macs());
/// assert!(w.phases().contains(&Phase::Conditioning));
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    ops: Vec<OpInstance>,
    segments: Vec<SegmentMeta>,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new(name: impl Into<String>) -> Self {
        Workload {
            name: name.into(),
            ops: Vec::new(),
            segments: Vec::new(),
        }
    }

    /// The workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operators in execution order (flat view across all segments).
    pub fn ops(&self) -> &[OpInstance] {
        &self.ops
    }

    /// Opens a new segment; subsequently pushed operators belong to it.
    ///
    /// An immediately re-opened (empty) segment is dropped rather than
    /// recorded.
    pub fn begin_segment(&mut self, name: impl Into<String>, phase: Phase) {
        self.drop_empty_tail();
        let at = self.ops.len();
        self.segments.push(SegmentMeta {
            name: name.into(),
            phase,
            start: at,
            end: at,
        });
    }

    /// Opens a new segment, builder style.
    #[must_use]
    pub fn with_segment(mut self, name: impl Into<String>, phase: Phase) -> Self {
        self.begin_segment(name, phase);
        self
    }

    /// Appends an operator to the current (or implicit `"main"`) segment.
    pub fn push(&mut self, op: OpInstance) {
        if self.segments.is_empty() {
            self.begin_segment("main", Phase::PrePost);
        }
        self.ops.push(op);
        self.segments
            .last_mut()
            .expect("segment opened above")
            .end = self.ops.len();
    }

    /// Appends an operator, builder style.
    #[must_use]
    pub fn with(mut self, op: OpInstance) -> Self {
        self.push(op);
        self
    }

    /// Concatenates another workload's ops, carrying its segments over.
    pub fn extend_from(&mut self, other: &Workload) {
        self.append_segments_of(other);
        self.ops.extend_from_slice(&other.ops);
        self.close_open_segment();
    }

    /// Appends `other`'s ops with their counts multiplied by `times`
    /// (e.g. one Transformer layer × 48), carrying its segments over.
    pub fn extend_repeated(&mut self, other: &Workload, times: u64) {
        self.append_segments_of(other);
        for op in &other.ops {
            self.ops.push(op.clone().repeated(op.count() * times));
        }
        self.close_open_segment();
    }

    /// Copies `other`'s segment boundaries, shifted to this workload's
    /// current end. Ops outside any segment of `other` (possible only for
    /// workloads built before segmentation existed) fall into the segment
    /// open at the call site.
    fn append_segments_of(&mut self, other: &Workload) {
        let shift = self.ops.len();
        for meta in &other.segments {
            self.drop_empty_tail();
            self.segments.push(SegmentMeta {
                name: meta.name.clone(),
                phase: meta.phase,
                start: meta.start + shift,
                end: meta.end + shift,
            });
        }
    }

    /// Discards a trailing segment that never received an op, so opening
    /// segments back to back does not accumulate empties.
    fn drop_empty_tail(&mut self) {
        if self.segments.last().is_some_and(|last| last.start == last.end) {
            self.segments.pop();
        }
    }

    /// After a bulk append, makes sure the trailing segment covers every
    /// op (ops appended past the last recorded boundary join it).
    fn close_open_segment(&mut self) {
        match self.segments.last_mut() {
            Some(last) => last.end = self.ops.len(),
            None if !self.ops.is_empty() => {
                self.segments.push(SegmentMeta {
                    name: "main".to_owned(),
                    phase: Phase::PrePost,
                    start: 0,
                    end: self.ops.len(),
                });
            }
            None => {}
        }
    }

    /// Iterator over the workload's segments, in execution order.
    ///
    /// Every op belongs to exactly one segment, so segment totals
    /// partition the flat totals.
    pub fn segments(&self) -> impl Iterator<Item = Segment<'_>> {
        self.segments.iter().filter(|m| m.start < m.end).map(|m| Segment {
            name: &m.name,
            phase: m.phase,
            ops: &self.ops[m.start..m.end],
        })
    }

    /// Number of non-empty segments.
    pub fn segment_count(&self) -> usize {
        self.segments.iter().filter(|m| m.start < m.end).count()
    }

    /// Distinct phases present, in first-seen order.
    pub fn phases(&self) -> Vec<Phase> {
        let mut seen = Vec::new();
        for seg in self.segments() {
            if !seen.contains(&seg.phase()) {
                seen.push(seg.phase());
            }
        }
        seen
    }

    /// MACs restricted to segments of one phase.
    pub fn macs_in_phase(&self, phase: Phase) -> u64 {
        self.segments()
            .filter(|s| s.phase() == phase)
            .map(|s| s.total_macs())
            .sum()
    }

    /// Total MACs across all operators and repetitions.
    pub fn total_macs(&self) -> u64 {
        self.ops.iter().map(OpInstance::total_macs).sum()
    }

    /// Total unique main-memory traffic (weights + KV + embeddings).
    pub fn main_memory_bytes(&self) -> Bytes {
        self.ops
            .iter()
            .map(|i| i.op().main_memory_bytes() * i.count())
            .sum()
    }

    /// MACs restricted to one reporting category.
    pub fn macs_in(&self, category: OpCategory) -> u64 {
        self.ops
            .iter()
            .filter(|i| i.category() == category)
            .map(OpInstance::total_macs)
            .sum()
    }

    /// Iterator over the distinct categories present, in first-seen order.
    pub fn categories(&self) -> Vec<OpCategory> {
        let mut seen = Vec::new();
        for op in &self.ops {
            if !seen.contains(&op.category()) {
                seen.push(op.category());
            }
        }
        seen
    }
}

impl Extend<OpInstance> for Workload {
    fn extend<T: IntoIterator<Item = OpInstance>>(&mut self, iter: T) {
        for op in iter {
            self.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use cimtpu_units::{DataType, GemmShape};

    fn gemm(name: &str, m: u64) -> OpInstance {
        OpInstance::new(
            name,
            OpCategory::QkvGen,
            Op::Gemm {
                shape: GemmShape::new(m, 16, 16).unwrap(),
                dtype: DataType::Int8,
            },
        )
    }

    #[test]
    fn aggregates_sum_over_ops() {
        let mut w = Workload::new("t");
        w.push(gemm("a", 2));
        w.push(gemm("b", 3).repeated(4));
        assert_eq!(w.total_macs(), 2 * 256 + 4 * 3 * 256);
        assert_eq!(w.macs_in(OpCategory::QkvGen), w.total_macs());
        assert_eq!(w.macs_in(OpCategory::Gelu), 0);
    }

    #[test]
    fn extend_repeated_multiplies_counts() {
        let layer = Workload::new("layer").with(gemm("a", 1).repeated(2));
        let mut model = Workload::new("model");
        model.extend_repeated(&layer, 48);
        assert_eq!(model.ops()[0].count(), 96);
    }

    #[test]
    fn categories_preserve_first_seen_order() {
        let mut w = Workload::new("t");
        w.push(gemm("a", 1));
        w.push(OpInstance::new("s", OpCategory::Attention, Op::Softmax { rows: 1, cols: 1 }));
        w.push(gemm("b", 1));
        assert_eq!(w.categories(), vec![OpCategory::QkvGen, OpCategory::Attention]);
    }

    #[test]
    fn implicit_segment_covers_untagged_ops() {
        let mut w = Workload::new("t");
        w.push(gemm("a", 1));
        w.push(gemm("b", 1));
        let segs: Vec<_> = w.segments().collect();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].name(), "main");
        assert_eq!(segs[0].phase(), Phase::PrePost);
        assert_eq!(segs[0].ops().len(), 2);
    }

    #[test]
    fn segments_partition_the_flat_list() {
        let mut w = Workload::new("t");
        w.begin_segment("attn", Phase::Prefill);
        w.push(gemm("a", 1));
        w.push(gemm("b", 2));
        w.begin_segment("ffn", Phase::Prefill);
        w.push(gemm("c", 3).repeated(2));
        assert_eq!(w.segment_count(), 2);
        let seg_macs: u64 = w.segments().map(|s| s.total_macs()).sum();
        assert_eq!(seg_macs, w.total_macs());
        let seg_ops: usize = w.segments().map(|s| s.ops().len()).sum();
        assert_eq!(seg_ops, w.ops().len());
        assert_eq!(w.macs_in_phase(Phase::Prefill), w.total_macs());
        assert_eq!(w.macs_in_phase(Phase::Decode), 0);
    }

    #[test]
    fn empty_segments_are_dropped() {
        let mut w = Workload::new("t");
        w.begin_segment("empty", Phase::Prefill);
        w.begin_segment("real", Phase::Decode);
        w.push(gemm("a", 1));
        assert_eq!(w.segment_count(), 1);
        assert_eq!(w.segments().next().unwrap().name(), "real");
    }

    #[test]
    fn extend_repeated_carries_segments() {
        let mut layer = Workload::new("layer");
        layer.begin_segment("attn", Phase::Decode);
        layer.push(gemm("a", 1));
        layer.begin_segment("ffn", Phase::Decode);
        layer.push(gemm("b", 1));

        let mut model = Workload::new("model");
        model.begin_segment("embed", Phase::PrePost);
        model.push(gemm("e", 1));
        model.extend_repeated(&layer, 48);
        model.begin_segment("head", Phase::PrePost);
        model.push(gemm("h", 1));

        let names: Vec<&str> = model.segments().map(|s| s.name()).collect();
        assert_eq!(names, vec!["embed", "attn", "ffn", "head"]);
        assert_eq!(model.phases(), vec![Phase::PrePost, Phase::Decode]);
        // Counts multiplied inside the carried segments.
        let attn = model.segments().find(|s| s.name() == "attn").unwrap();
        assert_eq!(attn.ops()[0].count(), 48);
        assert_eq!(attn.op_executions(), 48);
    }

    #[test]
    fn extend_trait_routes_through_segments() {
        let mut w = Workload::new("t");
        w.begin_segment("s", Phase::Decode);
        w.extend(vec![gemm("a", 1), gemm("b", 1)]);
        assert_eq!(w.segments().next().unwrap().ops().len(), 2);
    }
}
