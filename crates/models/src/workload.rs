//! A named list of operators plus aggregate queries.

use serde::{Deserialize, Serialize};

use cimtpu_units::Bytes;

use crate::op::{OpCategory, OpInstance};

/// A workload: an ordered list of [`OpInstance`]s.
///
/// # Examples
///
/// ```
/// use cimtpu_models::presets;
/// let w = presets::dit_xl_2().block(8, 512)?;
/// assert!(w.total_macs() > 0);
/// assert!(w.ops().len() > 10);
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    ops: Vec<OpInstance>,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new(name: impl Into<String>) -> Self {
        Workload {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// The workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operators in execution order.
    pub fn ops(&self) -> &[OpInstance] {
        &self.ops
    }

    /// Appends an operator.
    pub fn push(&mut self, op: OpInstance) {
        self.ops.push(op);
    }

    /// Appends an operator, builder style.
    #[must_use]
    pub fn with(mut self, op: OpInstance) -> Self {
        self.push(op);
        self
    }

    /// Concatenates another workload's ops.
    pub fn extend_from(&mut self, other: &Workload) {
        self.ops.extend_from_slice(&other.ops);
    }

    /// Appends `other`'s ops with their counts multiplied by `times`
    /// (e.g. one Transformer layer × 48).
    pub fn extend_repeated(&mut self, other: &Workload, times: u64) {
        for op in &other.ops {
            self.ops.push(op.clone().repeated(op.count() * times));
        }
    }

    /// Total MACs across all operators and repetitions.
    pub fn total_macs(&self) -> u64 {
        self.ops.iter().map(OpInstance::total_macs).sum()
    }

    /// Total unique main-memory traffic (weights + KV + embeddings).
    pub fn main_memory_bytes(&self) -> Bytes {
        self.ops
            .iter()
            .map(|i| i.op().main_memory_bytes() * i.count())
            .sum()
    }

    /// MACs restricted to one reporting category.
    pub fn macs_in(&self, category: OpCategory) -> u64 {
        self.ops
            .iter()
            .filter(|i| i.category() == category)
            .map(OpInstance::total_macs)
            .sum()
    }

    /// Iterator over the distinct categories present, in first-seen order.
    pub fn categories(&self) -> Vec<OpCategory> {
        let mut seen = Vec::new();
        for op in &self.ops {
            if !seen.contains(&op.category()) {
                seen.push(op.category());
            }
        }
        seen
    }
}

impl Extend<OpInstance> for Workload {
    fn extend<T: IntoIterator<Item = OpInstance>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use cimtpu_units::{DataType, GemmShape};

    fn gemm(name: &str, m: u64) -> OpInstance {
        OpInstance::new(
            name,
            OpCategory::QkvGen,
            Op::Gemm {
                shape: GemmShape::new(m, 16, 16).unwrap(),
                dtype: DataType::Int8,
            },
        )
    }

    #[test]
    fn aggregates_sum_over_ops() {
        let mut w = Workload::new("t");
        w.push(gemm("a", 2));
        w.push(gemm("b", 3).repeated(4));
        assert_eq!(w.total_macs(), 2 * 256 + 4 * 3 * 256);
        assert_eq!(w.macs_in(OpCategory::QkvGen), w.total_macs());
        assert_eq!(w.macs_in(OpCategory::Gelu), 0);
    }

    #[test]
    fn extend_repeated_multiplies_counts() {
        let layer = Workload::new("layer").with(gemm("a", 1).repeated(2));
        let mut model = Workload::new("model");
        model.extend_repeated(&layer, 48);
        assert_eq!(model.ops()[0].count(), 96);
    }

    #[test]
    fn categories_preserve_first_seen_order() {
        let mut w = Workload::new("t");
        w.push(gemm("a", 1));
        w.push(OpInstance::new("s", OpCategory::Attention, Op::Softmax { rows: 1, cols: 1 }));
        w.push(gemm("b", 1));
        assert_eq!(w.categories(), vec![OpCategory::QkvGen, OpCategory::Attention]);
    }
}
