//! Transformer-layer geometry and prefill/decode workload builders.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Bytes, DataType, Error, GemmShape, Result};

use crate::op::{Op, OpCategory, OpInstance};
use crate::phase::Phase;
use crate::workload::Workload;

/// Geometry of one Transformer layer (Fig. 2b).
///
/// # Examples
///
/// ```
/// use cimtpu_models::TransformerConfig;
/// let cfg = TransformerConfig::new("GPT3-30B", 48, 56, 7168, 4 * 7168)?;
/// assert_eq!(cfg.d_head(), 128);
/// assert_eq!(cfg.weight_params_per_layer(), 12 * 7168 * 7168);
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransformerConfig {
    name: String,
    layers: u64,
    heads: u64,
    /// Key/value heads; equals `heads` for multi-head attention, fewer for
    /// grouped-query attention (GQA).
    kv_heads: u64,
    d_model: u64,
    d_ff: u64,
    dtype: DataType,
}

impl TransformerConfig {
    /// Creates a layer configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any dimension is zero or
    /// `d_model` is not divisible by `heads`.
    pub fn new(
        name: impl Into<String>,
        layers: u64,
        heads: u64,
        d_model: u64,
        d_ff: u64,
    ) -> Result<Self> {
        let name = name.into();
        if layers == 0 || heads == 0 || d_model == 0 || d_ff == 0 {
            return Err(Error::invalid_config(format!(
                "transformer config {name} has a zero dimension"
            )));
        }
        if !d_model.is_multiple_of(heads) {
            return Err(Error::invalid_config(format!(
                "d_model {d_model} not divisible by {heads} heads"
            )));
        }
        Ok(TransformerConfig {
            name,
            layers,
            heads,
            kv_heads: heads,
            d_model,
            d_ff,
            dtype: DataType::Int8,
        })
    }

    /// Enables grouped-query attention with `kv_heads` key/value heads
    /// (Llama2-70B style). Each group of `heads / kv_heads` query heads
    /// shares one K/V head, shrinking both the KV cache and the QKV
    /// projection.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `kv_heads` is zero or does not
    /// divide `heads`.
    pub fn with_kv_heads(mut self, kv_heads: u64) -> Result<Self> {
        if kv_heads == 0 || !self.heads.is_multiple_of(kv_heads) {
            return Err(Error::invalid_config(format!(
                "kv_heads {kv_heads} must be a non-zero divisor of {} heads",
                self.heads
            )));
        }
        self.kv_heads = kv_heads;
        Ok(self)
    }

    /// Key/value heads (GQA; equals `heads()` for plain MHA).
    pub fn kv_heads(&self) -> u64 {
        self.kv_heads
    }

    /// Query heads per key/value group.
    pub fn group_size(&self) -> u64 {
        self.heads / self.kv_heads
    }

    /// Output width of the fused QKV projection: d (Q) + 2·kv_heads·d_head.
    pub fn qkv_width(&self) -> u64 {
        self.d_model + 2 * self.kv_heads * self.d_head()
    }

    /// Sets the operand precision (default INT8, as in the paper's evals).
    #[must_use]
    pub fn with_dtype(mut self, dtype: DataType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of Transformer layers.
    pub fn layers(&self) -> u64 {
        self.layers
    }

    /// Attention heads per layer.
    pub fn heads(&self) -> u64 {
        self.heads
    }

    /// Hidden width.
    pub fn d_model(&self) -> u64 {
        self.d_model
    }

    /// Feed-forward inner width.
    pub fn d_ff(&self) -> u64 {
        self.d_ff
    }

    /// Per-head width.
    pub fn d_head(&self) -> u64 {
        self.d_model / self.heads
    }

    /// Operand precision.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Weight parameters in one layer: QKV (d·qkv_width) + proj (d²) +
    /// FFN (2·d·d_ff). For MHA this reduces to the familiar `12·d²` when
    /// `d_ff = 4d`.
    pub fn weight_params_per_layer(&self) -> u64 {
        self.d_model * self.qkv_width()
            + self.d_model * self.d_model
            + 2 * self.d_model * self.d_ff
    }

    /// Weight bytes of one layer at the configured precision.
    pub fn weight_bytes_per_layer(&self) -> Bytes {
        Bytes::new(self.weight_params_per_layer() * self.dtype.size_bytes())
    }

    /// KV-cache bytes per layer for `batch` sequences of `ctx` tokens
    /// (GQA stores only `kv_heads · d_head` channels per token).
    pub fn kv_cache_bytes_per_layer(&self, batch: u64, ctx: u64) -> Bytes {
        Bytes::new(
            2 * batch * ctx * self.kv_heads * self.d_head() * self.dtype.size_bytes(),
        )
    }

    /// KV-cache bytes one token occupies in **one** layer: key + value
    /// vectors of `kv_heads · d_head` channels each, at the configured
    /// precision.
    pub fn kv_bytes_per_token_per_layer(&self) -> Bytes {
        self.kv_cache_bytes_per_layer(1, 1)
    }

    /// KV-cache bytes one token occupies across **all** layers — the
    /// quantity a serving memory budget is spent in.
    pub fn kv_bytes_per_token(&self) -> Bytes {
        Bytes::new(self.kv_bytes_per_token_per_layer().get() * self.layers)
    }

    /// Builds the operator list for **one layer** of the prefill
    /// (summarization) stage: `batch` sequences of `seq` tokens.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if `batch` or `seq` is zero.
    pub fn prefill_layer(&self, batch: u64, seq: u64) -> Result<Workload> {
        if batch == 0 || seq == 0 {
            return Err(Error::invalid_shape("prefill batch/seq must be non-zero"));
        }
        let tokens = batch * seq;
        let d = self.d_model;
        let dtype = self.dtype;
        let mut w = Workload::new(format!("{} prefill layer (B={batch}, L={seq})", self.name));

        w.begin_segment("attention", Phase::Prefill);
        w.push(OpInstance::new(
            "LayerNorm (pre-attn)",
            OpCategory::LayerNorm,
            Op::LayerNorm { rows: tokens, d },
        ));
        w.push(OpInstance::new(
            "QKV Gen",
            OpCategory::QkvGen,
            Op::Gemm { shape: GemmShape::new(tokens, d, self.qkv_width())?, dtype },
        ));
        // Per-(batch, kv-head) score matmul; a GQA group's query heads share
        // one K operand, so their rows batch into a single matmul.
        w.push(OpInstance::new(
            "Q x K^T",
            OpCategory::Attention,
            Op::BatchedMatmul {
                batch: batch * self.kv_heads,
                shape: GemmShape::new(self.group_size() * seq, self.d_head(), seq)?,
                dtype,
                static_weights: false,
            },
        ));
        w.push(OpInstance::new(
            "Softmax",
            OpCategory::Attention,
            Op::Softmax { rows: batch * self.heads * seq, cols: seq },
        ));
        w.push(OpInstance::new(
            "S x V",
            OpCategory::Attention,
            Op::BatchedMatmul {
                batch: batch * self.kv_heads,
                shape: GemmShape::new(self.group_size() * seq, seq, self.d_head())?,
                dtype,
                static_weights: false,
            },
        ));
        w.push(OpInstance::new(
            "Proj",
            OpCategory::Projection,
            Op::Gemm { shape: GemmShape::new(tokens, d, d)?, dtype },
        ));
        w.push(OpInstance::new(
            "Residual (attn)",
            OpCategory::Other,
            Op::Elementwise { elems: tokens * d, ops_per_elem: 1 },
        ));
        w.begin_segment("ffn", Phase::Prefill);
        w.push(OpInstance::new(
            "LayerNorm (pre-FFN)",
            OpCategory::LayerNorm,
            Op::LayerNorm { rows: tokens, d },
        ));
        w.push(OpInstance::new(
            "FFN1",
            OpCategory::Ffn1,
            Op::Gemm { shape: GemmShape::new(tokens, d, self.d_ff)?, dtype },
        ));
        w.push(OpInstance::new(
            "GeLU",
            OpCategory::Gelu,
            Op::Gelu { elems: tokens * self.d_ff },
        ));
        w.push(OpInstance::new(
            "FFN2",
            OpCategory::Ffn2,
            Op::Gemm { shape: GemmShape::new(tokens, self.d_ff, d)?, dtype },
        ));
        w.push(OpInstance::new(
            "Residual (FFN)",
            OpCategory::Other,
            Op::Elementwise { elems: tokens * d, ops_per_elem: 1 },
        ));
        // KV-cache store for this layer.
        w.begin_segment("kv-cache", Phase::Prefill);
        w.push(OpInstance::new(
            "Store KV-cache",
            OpCategory::Other,
            Op::Elementwise {
                elems: 2 * tokens * self.kv_heads * self.d_head(),
                ops_per_elem: 1,
            },
        ));
        Ok(w)
    }

    /// Builds the operator list for **one layer** of one chunked-prefill
    /// step: `batch` sequences ingest `chunk` new prompt tokens each,
    /// attending causally to `past` already-cached tokens plus the chunk
    /// itself (Sarathi-style chunked prefill).
    ///
    /// With `past = 0` this is exactly [`prefill_layer`](Self::prefill_layer)
    /// for a `chunk`-token prompt; later chunks grow the score matrices to
    /// `chunk × (past + chunk)` while the weight GEMMs stay proportional
    /// to the chunk, which is what lets a scheduler interleave decode
    /// steps between chunks instead of stalling behind a monolithic
    /// prefill.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if `batch` or `chunk` is zero.
    pub fn prefill_chunk_layer(&self, batch: u64, chunk: u64, past: u64) -> Result<Workload> {
        if past == 0 {
            return self.prefill_layer(batch, chunk);
        }
        if batch == 0 || chunk == 0 {
            return Err(Error::invalid_shape("prefill batch/chunk must be non-zero"));
        }
        let tokens = batch * chunk;
        let total = past + chunk;
        let d = self.d_model;
        let dtype = self.dtype;
        let mut w = Workload::new(format!(
            "{} prefill chunk layer (B={batch}, C={chunk}, past={past})",
            self.name
        ));

        w.begin_segment("attention", Phase::Prefill);
        w.push(OpInstance::new(
            "LayerNorm (pre-attn)",
            OpCategory::LayerNorm,
            Op::LayerNorm { rows: tokens, d },
        ));
        w.push(OpInstance::new(
            "QKV Gen",
            OpCategory::QkvGen,
            Op::Gemm { shape: GemmShape::new(tokens, d, self.qkv_width())?, dtype },
        ));
        // Chunk queries attend over the cached context plus the chunk.
        w.push(OpInstance::new(
            "Q x K^T",
            OpCategory::Attention,
            Op::BatchedMatmul {
                batch: batch * self.kv_heads,
                shape: GemmShape::new(self.group_size() * chunk, self.d_head(), total)?,
                dtype,
                static_weights: false,
            },
        ));
        w.push(OpInstance::new(
            "Softmax",
            OpCategory::Attention,
            Op::Softmax { rows: batch * self.heads * chunk, cols: total },
        ));
        w.push(OpInstance::new(
            "S x V",
            OpCategory::Attention,
            Op::BatchedMatmul {
                batch: batch * self.kv_heads,
                shape: GemmShape::new(self.group_size() * chunk, total, self.d_head())?,
                dtype,
                static_weights: false,
            },
        ));
        w.push(OpInstance::new(
            "Proj",
            OpCategory::Projection,
            Op::Gemm { shape: GemmShape::new(tokens, d, d)?, dtype },
        ));
        w.push(OpInstance::new(
            "Residual (attn)",
            OpCategory::Other,
            Op::Elementwise { elems: tokens * d, ops_per_elem: 1 },
        ));
        w.begin_segment("ffn", Phase::Prefill);
        w.push(OpInstance::new(
            "LayerNorm (pre-FFN)",
            OpCategory::LayerNorm,
            Op::LayerNorm { rows: tokens, d },
        ));
        w.push(OpInstance::new(
            "FFN1",
            OpCategory::Ffn1,
            Op::Gemm { shape: GemmShape::new(tokens, d, self.d_ff)?, dtype },
        ));
        w.push(OpInstance::new(
            "GeLU",
            OpCategory::Gelu,
            Op::Gelu { elems: tokens * self.d_ff },
        ));
        w.push(OpInstance::new(
            "FFN2",
            OpCategory::Ffn2,
            Op::Gemm { shape: GemmShape::new(tokens, self.d_ff, d)?, dtype },
        ));
        w.push(OpInstance::new(
            "Residual (FFN)",
            OpCategory::Other,
            Op::Elementwise { elems: tokens * d, ops_per_elem: 1 },
        ));
        w.begin_segment("kv-cache", Phase::Prefill);
        w.push(OpInstance::new(
            "Store KV-cache",
            OpCategory::Other,
            Op::Elementwise {
                elems: 2 * tokens * self.kv_heads * self.d_head(),
                ops_per_elem: 1,
            },
        ));
        Ok(w)
    }

    /// Builds the operator list for **one layer** of one decoding step:
    /// `batch` sequences, each attending to `ctx` cached tokens.
    ///
    /// The matmuls degenerate to GEMV-shaped operations (`m = batch` for
    /// weight GEMMs, `m = 1` per head for attention), which is what makes
    /// decoding memory-bound (paper Section IV-B).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if `batch` or `ctx` is zero.
    pub fn decode_layer(&self, batch: u64, ctx: u64) -> Result<Workload> {
        if batch == 0 || ctx == 0 {
            return Err(Error::invalid_shape("decode batch/ctx must be non-zero"));
        }
        let d = self.d_model;
        let dtype = self.dtype;
        let mut w = Workload::new(format!("{} decode layer (B={batch}, ctx={ctx})", self.name));

        w.begin_segment("attention", Phase::Decode);
        w.push(OpInstance::new(
            "LayerNorm (pre-attn)",
            OpCategory::LayerNorm,
            Op::LayerNorm { rows: batch, d },
        ));
        w.push(OpInstance::new(
            "QKV Gen",
            OpCategory::QkvGen,
            Op::Gemm { shape: GemmShape::new(batch, d, self.qkv_width())?, dtype },
        ));
        w.push(OpInstance::new(
            "Q x K^T",
            OpCategory::Attention,
            Op::BatchedMatmul {
                batch: batch * self.kv_heads,
                shape: GemmShape::new(self.group_size(), self.d_head(), ctx)?,
                dtype,
                static_weights: false,
            },
        ));
        w.push(OpInstance::new(
            "Softmax",
            OpCategory::Attention,
            Op::Softmax { rows: batch * self.heads, cols: ctx },
        ));
        w.push(OpInstance::new(
            "S x V",
            OpCategory::Attention,
            Op::BatchedMatmul {
                batch: batch * self.kv_heads,
                shape: GemmShape::new(self.group_size(), ctx, self.d_head())?,
                dtype,
                static_weights: false,
            },
        ));
        w.push(OpInstance::new(
            "Proj",
            OpCategory::Projection,
            Op::Gemm { shape: GemmShape::new(batch, d, d)?, dtype },
        ));
        w.begin_segment("ffn", Phase::Decode);
        w.push(OpInstance::new(
            "LayerNorm (pre-FFN)",
            OpCategory::LayerNorm,
            Op::LayerNorm { rows: batch, d },
        ));
        w.push(OpInstance::new(
            "FFN1",
            OpCategory::Ffn1,
            Op::Gemm { shape: GemmShape::new(batch, d, self.d_ff)?, dtype },
        ));
        w.push(OpInstance::new(
            "GeLU",
            OpCategory::Gelu,
            Op::Gelu { elems: batch * self.d_ff },
        ));
        w.push(OpInstance::new(
            "FFN2",
            OpCategory::Ffn2,
            Op::Gemm { shape: GemmShape::new(batch, self.d_ff, d)?, dtype },
        ));
        w.begin_segment("glue", Phase::Decode);
        w.push(OpInstance::new(
            "Residuals",
            OpCategory::Other,
            Op::Elementwise { elems: 2 * batch * d, ops_per_elem: 1 },
        ));
        w.push(OpInstance::new(
            "Update KV-cache",
            OpCategory::Other,
            Op::Elementwise { elems: 2 * batch * d, ops_per_elem: 1 },
        ));
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn gpt3() -> TransformerConfig {
        TransformerConfig::new("GPT3-30B", 48, 56, 7168, 4 * 7168).unwrap()
    }

    #[test]
    fn rejects_invalid_geometry() {
        assert!(TransformerConfig::new("x", 0, 1, 8, 8).is_err());
        assert!(TransformerConfig::new("x", 1, 3, 8, 8).is_err()); // 8 % 3 != 0
    }

    #[test]
    fn prefill_macs_match_closed_form() {
        // GEMM MACs per prefill layer: tokens*d*(3d) + tokens*d*d + 2*tokens*d*d_ff
        // + attention 2*B*h*L^2*d_head.
        let cfg = gpt3();
        let (b, l) = (8, 1024);
        let w = cfg.prefill_layer(b, l).unwrap();
        let tokens = b * l;
        let d = cfg.d_model();
        let expected = tokens * d * 3 * d
            + tokens * d * d
            + 2 * tokens * d * cfg.d_ff()
            + 2 * b * cfg.heads() * l * l * cfg.d_head();
        assert_eq!(w.total_macs(), expected);
    }

    #[test]
    fn chunk_with_no_past_is_plain_prefill() {
        let cfg = gpt3();
        let chunk = cfg.prefill_chunk_layer(4, 128, 0).unwrap();
        let plain = cfg.prefill_layer(4, 128).unwrap();
        assert_eq!(chunk.ops(), plain.ops());
    }

    #[test]
    fn chunk_macs_match_closed_form() {
        // Weight GEMMs scale with the chunk; attention scores span
        // chunk x (past + chunk).
        let cfg = gpt3();
        let (b, chunk, past) = (4, 256, 768);
        let w = cfg.prefill_chunk_layer(b, chunk, past).unwrap();
        let tokens = b * chunk;
        let d = cfg.d_model();
        let expected = tokens * d * 3 * d
            + tokens * d * d
            + 2 * tokens * d * cfg.d_ff()
            + 2 * b * cfg.heads() * chunk * (past + chunk) * cfg.d_head();
        assert_eq!(w.total_macs(), expected);
        assert_eq!(w.phases(), vec![Phase::Prefill]);
    }

    #[test]
    fn chunks_sum_to_full_prefill_gemm_macs() {
        // Splitting a prompt into chunks must conserve the weight-GEMM
        // work; attention MACs match because Σ chunk·(past+chunk) over
        // causal chunks equals the full L² upper-triangle accounting.
        let cfg = gpt3();
        let (b, l, chunk) = (2, 1024, 256);
        let full = cfg.prefill_layer(b, l).unwrap().total_macs();
        let mut sum = 0;
        let mut past = 0;
        while past < l {
            let c = chunk.min(l - past);
            sum += cfg.prefill_chunk_layer(b, c, past).unwrap().total_macs();
            past += c;
        }
        // Full prefill scores the whole L x L matrix; causal chunking
        // computes the same Q rows against only the cached prefix, so the
        // chunked total is smaller by the strictly-upper triangle of the
        // inter-chunk blocks. Verify the exact difference.
        let mut missing = 0;
        past = 0;
        while past < l {
            let c = chunk.min(l - past);
            missing += c * (l - past - c); // future keys a chunk never sees
            past += c;
        }
        let attn_missing = 2 * b * cfg.heads() * missing * cfg.d_head();
        assert_eq!(sum + attn_missing, full);
    }

    #[test]
    fn kv_bytes_per_token_accessors() {
        let cfg = gpt3();
        assert_eq!(
            cfg.kv_bytes_per_token_per_layer(),
            cfg.kv_cache_bytes_per_layer(1, 1)
        );
        assert_eq!(
            cfg.kv_bytes_per_token().get(),
            cfg.layers() * cfg.kv_bytes_per_token_per_layer().get()
        );
        // 2 x kv_heads x d_head x 1 byte (INT8) per layer.
        assert_eq!(
            cfg.kv_bytes_per_token_per_layer().get(),
            2 * cfg.kv_heads() * cfg.d_head()
        );
    }

    #[test]
    fn decode_macs_match_closed_form() {
        let cfg = gpt3();
        let (b, ctx) = (8, 1280);
        let w = cfg.decode_layer(b, ctx).unwrap();
        let d = cfg.d_model();
        let expected = b * d * 3 * d
            + b * d * d
            + 2 * b * d * cfg.d_ff()
            + 2 * b * cfg.heads() * ctx * cfg.d_head();
        assert_eq!(w.total_macs(), expected);
    }

    #[test]
    fn decode_streams_weights_and_kv() {
        let cfg = gpt3();
        let w = cfg.decode_layer(8, 1280).unwrap();
        let weights = cfg.weight_bytes_per_layer();
        let kv = cfg.kv_cache_bytes_per_layer(8, 1280);
        assert_eq!(w.main_memory_bytes(), weights + kv);
    }

    #[test]
    fn weight_params_match_30b_scale() {
        // 48 layers x 12 d^2 ~ 29.6B params for GPT3-30B.
        let cfg = gpt3();
        let total = cfg.weight_params_per_layer() * cfg.layers();
        assert!((total as f64 / 1e9) > 28.0 && (total as f64 / 1e9) < 31.0);
    }

    #[test]
    fn decode_attention_is_gemv() {
        let w = gpt3().decode_layer(8, 256).unwrap();
        for inst in w.ops() {
            if let Op::BatchedMatmul { shape, .. } = inst.op() {
                assert!(shape.is_gemv(), "{} should be GEMV-shaped", inst.name());
            }
        }
    }

    #[test]
    fn gqa_shrinks_kv_cache_and_qkv() {
        let mha = TransformerConfig::new("mha", 1, 64, 8192, 28672).unwrap();
        let gqa = TransformerConfig::new("gqa", 1, 64, 8192, 28672)
            .unwrap()
            .with_kv_heads(8)
            .unwrap();
        // KV cache shrinks by heads/kv_heads = 8x.
        assert_eq!(
            mha.kv_cache_bytes_per_layer(8, 1024).get(),
            8 * gqa.kv_cache_bytes_per_layer(8, 1024).get()
        );
        // QKV projection shrinks from 3d to d + 2*kv_heads*d_head.
        assert_eq!(mha.qkv_width(), 3 * 8192);
        assert_eq!(gqa.qkv_width(), 8192 + 2 * 8 * 128);
        assert!(gqa.weight_params_per_layer() < mha.weight_params_per_layer());
    }

    #[test]
    fn gqa_decode_batches_query_groups() {
        let gqa = TransformerConfig::new("gqa", 1, 64, 8192, 28672)
            .unwrap()
            .with_kv_heads(8)
            .unwrap();
        let w = gqa.decode_layer(4, 1024).unwrap();
        let qk = w.ops().iter().find(|o| o.name() == "Q x K^T").unwrap();
        match qk.op() {
            Op::BatchedMatmul { batch, shape, .. } => {
                assert_eq!(*batch, 4 * 8); // batch x kv_heads items
                assert_eq!(shape.m(), 8); // 8 query heads share each K
            }
            other => panic!("unexpected {other:?}"),
        }
        // MACs identical to the MHA formulation.
        let mha = TransformerConfig::new("mha", 1, 64, 8192, 28672).unwrap();
        let w_mha = mha.decode_layer(4, 1024).unwrap();
        let attn = |w: &Workload| {
            w.ops()
                .iter()
                .filter(|o| o.name().contains("x K^T") || o.name() == "S x V")
                .map(|o| o.total_macs())
                .sum::<u64>()
        };
        assert_eq!(attn(&w), attn(&w_mha));
    }

    #[test]
    fn invalid_kv_heads_rejected() {
        let t = TransformerConfig::new("x", 1, 64, 8192, 28672).unwrap();
        assert!(t.clone().with_kv_heads(0).is_err());
        assert!(t.clone().with_kv_heads(7).is_err()); // 64 % 7 != 0
        assert!(t.with_kv_heads(64).is_ok());
    }

    #[test]
    fn layers_are_phase_segmented() {
        let cfg = gpt3();
        let prefill = cfg.prefill_layer(8, 1024).unwrap();
        let names: Vec<&str> = prefill.segments().map(|s| s.name()).collect();
        assert_eq!(names, vec!["attention", "ffn", "kv-cache"]);
        assert_eq!(prefill.phases(), vec![Phase::Prefill]);
        assert_eq!(prefill.macs_in_phase(Phase::Prefill), prefill.total_macs());

        let decode = cfg.decode_layer(8, 1280).unwrap();
        let names: Vec<&str> = decode.segments().map(|s| s.name()).collect();
        assert_eq!(names, vec!["attention", "ffn", "glue"]);
        assert_eq!(decode.phases(), vec![Phase::Decode]);
        // Segments partition the flat op list.
        let seg_ops: usize = decode.segments().map(|s| s.ops().len()).sum();
        assert_eq!(seg_ops, decode.ops().len());
    }

    #[test]
    fn fig6_categories_present() {
        let w = gpt3().prefill_layer(8, 1024).unwrap();
        for cat in [
            OpCategory::QkvGen,
            OpCategory::Attention,
            OpCategory::Projection,
            OpCategory::Ffn1,
            OpCategory::Ffn2,
            OpCategory::LayerNorm,
            OpCategory::Gelu,
        ] {
            assert!(w.categories().contains(&cat), "missing {cat}");
        }
    }
}
