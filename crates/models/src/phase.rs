//! Execution phases: the serving-level structure of a workload.
//!
//! Operators describe *what* runs; phases describe *when* it runs in the
//! life of an inference request. A request-level scheduler batches and
//! interleaves work at phase granularity (prefill of one request between
//! decode steps of others, conditioning once per diffusion step), so every
//! workload builder tags its operator segments with a [`Phase`].

use std::fmt;

use serde::{Deserialize, Serialize};

/// The serving phase a workload segment belongs to.
///
/// Phases are orthogonal to [`OpCategory`](crate::OpCategory): categories
/// bucket operators for the paper's per-layer figures, phases bucket
/// *segments* for request-level scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Phase {
    /// Prompt ingestion (and other dense, compute-bound forward passes,
    /// e.g. a DiT block's attention/MLP work).
    Prefill,
    /// Auto-regressive token generation at GEMV-shaped intensity.
    Decode,
    /// DiT adaLN conditioning: per-image shift/scale/gate regression.
    Conditioning,
    /// Pre/post-processing around the model body: embedding lookups,
    /// patchify, prediction heads, un-patchify.
    PrePost,
    /// Cross-device communication (all-reduce, all-gather). Reserved for
    /// workloads that embed [`Op::AllReduce`](crate::Op::AllReduce)
    /// operators; the built-in tensor-parallel builders currently price
    /// ring collectives through the topology model *outside* the operator
    /// list, so none of them emits this phase yet.
    Collective,
}

impl Phase {
    /// All phases, in canonical reporting order.
    pub const ALL: [Phase; 5] = [
        Phase::Prefill,
        Phase::Decode,
        Phase::Conditioning,
        Phase::PrePost,
        Phase::Collective,
    ];

    /// Human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            Phase::Prefill => "Prefill",
            Phase::Decode => "Decode",
            Phase::Conditioning => "Conditioning",
            Phase::PrePost => "Pre/Post",
            Phase::Collective => "Collective",
        }
    }

    /// Whether segments in this phase repeat once per generated token
    /// (rather than once per request).
    pub const fn is_per_step(self) -> bool {
        matches!(self, Phase::Decode)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn only_decode_repeats_per_step() {
        for p in Phase::ALL {
            assert_eq!(p.is_per_step(), p == Phase::Decode, "{p}");
        }
    }
}
