//! Mixture-of-Experts (MoE) Transformer layers — an extension beyond the
//! paper's dense models.
//!
//! MoE layers replace the dense FFN with `experts` expert FFNs of which
//! each token activates `top_k`. For *decoding* this is the worst case for
//! weight locality: a small batch scatters across many experts, so weight
//! traffic multiplies while compute per expert collapses to GEMV shape —
//! exactly the regime where the CIM-MXU's overlapped weight updates and
//! energy efficiency matter most. Expert FFNs with distinct weights and few
//! rows each are modeled with the same [`Op::BatchedMatmul`] primitive as
//! attention.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Bytes, Error, GemmShape, Result};

use crate::op::{Op, OpCategory, OpInstance};
use crate::phase::Phase;
use crate::transformer::TransformerConfig;
use crate::workload::Workload;

/// Copies `dense`'s segments into `out`, dropping the dense-FFN operators
/// that the MoE layer replaces (the attention half and glue carry over
/// unchanged, segment structure included).
fn copy_without_dense_ffn(out: &mut Workload, dense: &Workload) {
    for seg in dense.segments() {
        out.begin_segment(seg.name(), seg.phase());
        for op in seg.ops() {
            if !matches!(
                op.category(),
                OpCategory::Ffn1 | OpCategory::Ffn2 | OpCategory::Gelu
            ) {
                out.push(op.clone());
            }
        }
    }
}

/// A Transformer with MoE feed-forward layers.
///
/// # Examples
///
/// ```
/// use cimtpu_models::MoeConfig;
/// let moe = MoeConfig::mixtral_8x7b_like()?;
/// assert_eq!(moe.experts(), 8);
/// assert_eq!(moe.top_k(), 2);
/// let layer = moe.decode_layer(8, 1024)?;
/// assert!(layer.total_macs() > 0);
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MoeConfig {
    transformer: TransformerConfig,
    experts: u64,
    top_k: u64,
}

impl MoeConfig {
    /// Creates an MoE configuration; `transformer.d_ff()` is the width of
    /// *one expert*.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `experts` is zero or `top_k` is
    /// zero or exceeds `experts`.
    pub fn new(transformer: TransformerConfig, experts: u64, top_k: u64) -> Result<Self> {
        if experts == 0 || top_k == 0 || top_k > experts {
            return Err(Error::invalid_config(format!(
                "need 1 <= top_k ({top_k}) <= experts ({experts})"
            )));
        }
        Ok(MoeConfig { transformer, experts, top_k })
    }

    /// A Mixtral-8x7B-like geometry: 32 layers, 32 heads, d 4096,
    /// expert FFN width 14336, 8 experts, top-2 routing.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in geometry.
    pub fn mixtral_8x7b_like() -> Result<Self> {
        let t = TransformerConfig::new("Mixtral-8x7B-like", 32, 32, 4096, 14336)?;
        MoeConfig::new(t, 8, 2)
    }

    /// The underlying Transformer geometry (d_ff = one expert's width).
    pub fn transformer(&self) -> &TransformerConfig {
        &self.transformer
    }

    /// Number of experts per layer.
    pub fn experts(&self) -> u64 {
        self.experts
    }

    /// Experts activated per token.
    pub fn top_k(&self) -> u64 {
        self.top_k
    }

    /// Weight bytes of one MoE layer (attention + router + all experts).
    pub fn weight_bytes_per_layer(&self) -> Bytes {
        let t = &self.transformer;
        let d = t.d_model();
        let attn = 4 * d * d;
        let router = d * self.experts;
        let expert_ffn = 2 * d * t.d_ff() * self.experts;
        Bytes::new((attn + router + expert_ffn) * t.dtype().size_bytes())
    }

    /// Experts activated by `tokens` tokens under uniform routing.
    pub fn activated_experts(&self, tokens: u64) -> u64 {
        (tokens * self.top_k).min(self.experts)
    }

    /// One decode step for `batch` sequences at context `ctx`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] for zero batch/ctx.
    pub fn decode_layer(&self, batch: u64, ctx: u64) -> Result<Workload> {
        let t = &self.transformer;
        let mut out = Workload::new(format!(
            "{} MoE decode layer (B={batch}, ctx={ctx}, {}x top-{})",
            t.name(),
            self.experts,
            self.top_k
        ));
        // Attention half is identical to the dense layer.
        copy_without_dense_ffn(&mut out, &t.decode_layer(batch, ctx)?);

        // Router + scattered expert FFNs.
        let d = t.d_model();
        let dtype = t.dtype();
        let activated = self.activated_experts(batch);
        let tokens_per_expert = (batch * self.top_k).div_ceil(activated);
        out.begin_segment("moe-ffn", Phase::Decode);
        out.push(OpInstance::new(
            "Router",
            OpCategory::Ffn1,
            Op::Gemm { shape: GemmShape::new(batch, d, self.experts)?, dtype },
        ));
        out.push(OpInstance::new(
            "Expert FFN1",
            OpCategory::Ffn1,
            Op::BatchedMatmul {
                batch: activated,
                shape: GemmShape::new(tokens_per_expert, d, t.d_ff())?,
                dtype,
                static_weights: true,
            },
        ));
        out.push(OpInstance::new(
            "Expert GeLU",
            OpCategory::Gelu,
            Op::Gelu { elems: activated * tokens_per_expert * t.d_ff() },
        ));
        out.push(OpInstance::new(
            "Expert FFN2",
            OpCategory::Ffn2,
            Op::BatchedMatmul {
                batch: activated,
                shape: GemmShape::new(tokens_per_expert, t.d_ff(), d)?,
                dtype,
                static_weights: true,
            },
        ));
        Ok(out)
    }

    /// One prefill layer for `batch` sequences of `seq` tokens: with many
    /// tokens, all experts activate and each processes a dense share.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] for zero batch/seq.
    pub fn prefill_layer(&self, batch: u64, seq: u64) -> Result<Workload> {
        let t = &self.transformer;
        let mut out = Workload::new(format!(
            "{} MoE prefill layer (B={batch}, L={seq}, {}x top-{})",
            t.name(),
            self.experts,
            self.top_k
        ));
        copy_without_dense_ffn(&mut out, &t.prefill_layer(batch, seq)?);

        let d = t.d_model();
        let dtype = t.dtype();
        let tokens = batch * seq;
        let activated = self.activated_experts(tokens);
        let tokens_per_expert = (tokens * self.top_k).div_ceil(activated);
        out.begin_segment("moe-ffn", Phase::Prefill);
        out.push(OpInstance::new(
            "Router",
            OpCategory::Ffn1,
            Op::Gemm { shape: GemmShape::new(tokens, d, self.experts)?, dtype },
        ));
        out.push(OpInstance::new(
            "Expert FFN1",
            OpCategory::Ffn1,
            Op::BatchedMatmul {
                batch: activated,
                shape: GemmShape::new(tokens_per_expert, d, t.d_ff())?,
                dtype,
                static_weights: true,
            },
        ));
        out.push(OpInstance::new(
            "Expert GeLU",
            OpCategory::Gelu,
            Op::Gelu { elems: activated * tokens_per_expert * t.d_ff() },
        ));
        out.push(OpInstance::new(
            "Expert FFN2",
            OpCategory::Ffn2,
            Op::BatchedMatmul {
                batch: activated,
                shape: GemmShape::new(tokens_per_expert, t.d_ff(), d)?,
                dtype,
                static_weights: true,
            },
        ));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moe() -> MoeConfig {
        MoeConfig::mixtral_8x7b_like().unwrap()
    }

    #[test]
    fn validation() {
        let t = TransformerConfig::new("x", 2, 4, 64, 256).unwrap();
        assert!(MoeConfig::new(t.clone(), 0, 1).is_err());
        assert!(MoeConfig::new(t.clone(), 4, 0).is_err());
        assert!(MoeConfig::new(t.clone(), 4, 5).is_err());
        assert!(MoeConfig::new(t, 4, 4).is_ok());
    }

    #[test]
    fn decode_scatters_experts() {
        // Batch 8, top-2: all 8 experts activate with 2 tokens each.
        let m = moe();
        assert_eq!(m.activated_experts(8), 8);
        let w = m.decode_layer(8, 1024).unwrap();
        let expert_op = w
            .ops()
            .iter()
            .find(|o| o.name() == "Expert FFN1")
            .unwrap();
        match expert_op.op() {
            Op::BatchedMatmul { batch, shape, .. } => {
                assert_eq!(*batch, 8);
                assert_eq!(shape.m(), 2);
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn moe_decode_streams_more_weights_than_dense() {
        // Dense FFN: 2*d*d_ff; MoE decode touches `activated` experts.
        let m = moe();
        let dense_equiv = m.transformer().decode_layer(8, 1024).unwrap();
        let moe_layer = m.decode_layer(8, 1024).unwrap();
        assert!(moe_layer.main_memory_bytes() > dense_equiv.main_memory_bytes());
    }

    #[test]
    fn prefill_activates_all_experts_densely() {
        let m = moe();
        let w = m.prefill_layer(8, 1024).unwrap();
        let expert_op = w.ops().iter().find(|o| o.name() == "Expert FFN1").unwrap();
        match expert_op.op() {
            Op::BatchedMatmul { batch, shape, .. } => {
                assert_eq!(*batch, 8); // all experts
                assert_eq!(shape.m(), 8 * 1024 * 2 / 8); // top-2 of 8192 tokens
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn layer_weight_bytes_count_all_experts() {
        let m = moe();
        let t = m.transformer();
        let expected = (4 * t.d_model() * t.d_model()
            + t.d_model() * 8
            + 2 * t.d_model() * t.d_ff() * 8)
            * t.dtype().size_bytes();
        assert_eq!(m.weight_bytes_per_layer(), Bytes::new(expected));
    }

    #[test]
    fn moe_layers_are_phase_segmented() {
        let m = moe();
        let decode = m.decode_layer(8, 1024).unwrap();
        assert_eq!(decode.phases(), vec![Phase::Decode]);
        let names: Vec<&str> = decode.segments().map(|s| s.name()).collect();
        assert_eq!(names, vec!["attention", "ffn", "glue", "moe-ffn"]);
        let seg_macs: u64 = decode.segments().map(|s| s.total_macs()).sum();
        assert_eq!(seg_macs, decode.total_macs());

        let prefill = m.prefill_layer(4, 256).unwrap();
        assert_eq!(prefill.phases(), vec![Phase::Prefill]);
        assert!(prefill.segments().any(|s| s.name() == "moe-ffn"));
    }

    #[test]
    fn attention_ops_preserved() {
        let w = moe().decode_layer(8, 512).unwrap();
        assert!(w.ops().iter().any(|o| o.name() == "Q x K^T"));
        assert!(w.ops().iter().any(|o| o.name() == "Softmax"));
        // Dense FFN replaced.
        assert!(!w.ops().iter().any(|o| o.name() == "FFN1"));
    }
}
