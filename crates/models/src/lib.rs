//! Generative-model workload definitions.
//!
//! This crate describes *what* the TPU must execute, independent of *how*
//! fast any particular hardware executes it:
//!
//! - [`Op`] — the operator IR: GEMMs with resident weights, batched
//!   attention matmuls (whose "weights" are activations/KV-cache with no
//!   reuse), and the vector-unit operators (softmax, LayerNorm, GeLU,
//!   elementwise);
//! - [`OpInstance`] / [`Workload`] — named, categorized, counted operator
//!   lists matching the layer categories of the paper's Fig. 6
//!   (QKV Gen, Attention, Proj, FFN1, FFN2, LayerNorm, GeLU, Conditioning);
//! - [`Phase`] / [`Segment`] — the serving-level structure: every workload
//!   partitions into named segments tagged Prefill / Decode / Conditioning /
//!   PrePost / Collective, the granularity at which a request-level
//!   scheduler batches work (the flat [`Workload::ops`] view is preserved);
//! - [`TransformerConfig`] — Transformer-layer geometry with
//!   [prefill](TransformerConfig::prefill_layer) and
//!   [decode](TransformerConfig::decode_layer) builders and KV-cache
//!   accounting;
//! - [`DitConfig`] — Diffusion-Transformer blocks with adaLN conditioning
//!   and shift/scale modulation (Fig. 2c);
//! - [`presets`] — the evaluated models of Table III (GPT-3-30B, DiT-XL/2)
//!   plus Llama2-13B (Fig. 2d) and size variants.
//!
//! # Examples
//!
//! ```
//! use cimtpu_models::presets;
//!
//! let gpt3 = presets::gpt3_30b();
//! let layer = gpt3.prefill_layer(8, 1024)?; // batch 8, 1024 tokens
//! assert!(layer.ops().iter().any(|op| op.name() == "QKV Gen"));
//! // Decode emits GEMV-shaped matmuls with far fewer MACs:
//! let decode = gpt3.decode_layer(8, 1280)?;
//! assert!(decode.total_macs() < layer.total_macs() / 100);
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dit;
mod llm;
mod moe;
mod op;
mod phase;
pub mod presets;
mod transformer;
mod workload;

pub use dit::DitConfig;
pub use llm::{LlmInferenceSpec, LlmModelConfig};
pub use moe::MoeConfig;
pub use op::{Op, OpCategory, OpInstance};
pub use phase::Phase;
pub use transformer::TransformerConfig;
pub use workload::{Segment, Workload};
