//! Model presets: the evaluated configurations of Table III and Fig. 2d.

use crate::dit::DitConfig;
use crate::llm::LlmModelConfig;
use crate::transformer::TransformerConfig;

/// GPT-3-30B Transformer layers (Table III: 48 layers, 56 heads, d 7168).
///
/// # Examples
///
/// ```
/// let cfg = cimtpu_models::presets::gpt3_30b();
/// assert_eq!((cfg.layers(), cfg.heads(), cfg.d_model()), (48, 56, 7168));
/// ```
pub fn gpt3_30b() -> TransformerConfig {
    TransformerConfig::new("GPT3-30B", 48, 56, 7168, 4 * 7168)
        .expect("static preset is valid")
}

/// GPT-3-30B with embedding table and prediction head (vocab 50257).
pub fn gpt3_30b_full() -> LlmModelConfig {
    LlmModelConfig::new(gpt3_30b(), 50257).expect("static preset is valid")
}

/// GPT-3-175B layers (96 layers, 96 heads, d 12288) for scaling studies.
pub fn gpt3_175b() -> TransformerConfig {
    TransformerConfig::new("GPT3-175B", 96, 96, 12288, 4 * 12288)
        .expect("static preset is valid")
}

/// GPT-3-6.7B layers (32 layers, 32 heads, d 4096) for scaling studies.
pub fn gpt3_6_7b() -> TransformerConfig {
    TransformerConfig::new("GPT3-6.7B", 32, 32, 4096, 4 * 4096)
        .expect("static preset is valid")
}

/// Llama2-13B layers (40 layers, 40 heads, d 5120, FFN 13824), used for the
/// Fig. 2d runtime-breakdown analysis.
pub fn llama2_13b() -> TransformerConfig {
    TransformerConfig::new("Llama2-13B", 40, 40, 5120, 13824)
        .expect("static preset is valid")
}

/// Llama2-13B with embedding table and head (vocab 32000).
pub fn llama2_13b_full() -> LlmModelConfig {
    LlmModelConfig::new(llama2_13b(), 32000).expect("static preset is valid")
}

/// Llama2-70B layers (80 layers, 64 heads, d 8192, FFN 28672) with
/// grouped-query attention (8 KV heads) — exercises the GQA path.
pub fn llama2_70b() -> TransformerConfig {
    TransformerConfig::new("Llama2-70B", 80, 64, 8192, 28672)
        .and_then(|t| t.with_kv_heads(8))
        .expect("static preset is valid")
}

/// DiT-XL/2 (Table III: 28 blocks, 16 heads, d 1152, patch 2).
///
/// # Examples
///
/// ```
/// let dit = cimtpu_models::presets::dit_xl_2();
/// assert_eq!(dit.blocks(), 28);
/// ```
pub fn dit_xl_2() -> DitConfig {
    DitConfig::xl_2().expect("static preset is valid")
}

/// DiT-L/2 (24 blocks, 16 heads, d 1024) for scaling studies.
pub fn dit_l_2() -> DitConfig {
    let t = TransformerConfig::new("DiT-L/2", 24, 16, 1024, 4 * 1024)
        .expect("static preset is valid");
    DitConfig::new(t, 2, 4).expect("static preset is valid")
}

/// DiT-B/2 (12 blocks, 12 heads, d 768) for scaling studies.
pub fn dit_b_2() -> DitConfig {
    let t = TransformerConfig::new("DiT-B/2", 12, 12, 768, 4 * 768)
        .expect("static preset is valid");
    DitConfig::new(t, 2, 4).expect("static preset is valid")
}

/// Looks a preset up by name (case-insensitive).
///
/// Recognized LLM names: `gpt3-30b`, `gpt3-175b`, `gpt3-6.7b`,
/// `llama2-13b`, `llama2-70b`.
///
/// # Errors
///
/// Returns [`cimtpu_units::Error::UnknownPreset`] for unknown names.
pub fn transformer_by_name(name: &str) -> cimtpu_units::Result<TransformerConfig> {
    match name.to_ascii_lowercase().as_str() {
        "gpt3-30b" => Ok(gpt3_30b()),
        "gpt3-175b" => Ok(gpt3_175b()),
        "gpt3-6.7b" => Ok(gpt3_6_7b()),
        "llama2-13b" => Ok(llama2_13b()),
        "llama2-70b" => Ok(llama2_70b()),
        other => Err(cimtpu_units::Error::unknown_preset(other.to_owned())),
    }
}

/// Looks a DiT preset up by name (case-insensitive).
///
/// Recognized names: `dit-xl/2`, `dit-l/2`, `dit-b/2`.
///
/// # Errors
///
/// Returns [`cimtpu_units::Error::UnknownPreset`] for unknown names.
pub fn dit_by_name(name: &str) -> cimtpu_units::Result<DitConfig> {
    match name.to_ascii_lowercase().as_str() {
        "dit-xl/2" => Ok(dit_xl_2()),
        "dit-l/2" => Ok(dit_l_2()),
        "dit-b/2" => Ok(dit_b_2()),
        other => Err(cimtpu_units::Error::unknown_preset(other.to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_configs() {
        let g = gpt3_30b();
        assert_eq!((g.layers(), g.heads(), g.d_model()), (48, 56, 7168));
        let d = dit_xl_2();
        assert_eq!(
            (d.blocks(), d.transformer().heads(), d.transformer().d_model()),
            (28, 16, 1152)
        );
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(transformer_by_name("GPT3-30B").unwrap().d_model(), 7168);
        assert_eq!(dit_by_name("dit-xl/2").unwrap().blocks(), 28);
        assert!(transformer_by_name("bert").is_err());
        assert!(dit_by_name("unet").is_err());
    }

    #[test]
    fn head_dims_are_sane() {
        assert_eq!(gpt3_30b().d_head(), 128);
        assert_eq!(gpt3_175b().d_head(), 128);
        assert_eq!(llama2_13b().d_head(), 128);
        assert_eq!(dit_xl_2().transformer().d_head(), 72);
    }
}
