//! Diffusion Transformer (DiT) workloads (Peebles & Xie, Fig. 2c).

use serde::{Deserialize, Serialize};

use cimtpu_units::{Error, GemmShape, Result};

use crate::op::{Op, OpCategory, OpInstance};
use crate::phase::Phase;
use crate::transformer::TransformerConfig;
use crate::workload::Workload;

/// Geometry of a Diffusion Transformer.
///
/// A DiT block is a Transformer layer augmented with adaLN conditioning
/// (an MLP that regresses per-block shift/scale/gate parameters from the
/// timestep + label embedding) and shift & scale modulation around the
/// attention and MLP sub-blocks.
///
/// # Examples
///
/// ```
/// use cimtpu_models::DitConfig;
/// let dit = DitConfig::xl_2()?;
/// assert_eq!(dit.tokens_for_resolution(512)?, 1024);
/// let block = dit.block(8, 512)?;
/// assert!(block.total_macs() > 0);
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DitConfig {
    transformer: TransformerConfig,
    patch: u64,
    latent_channels: u64,
    /// VAE spatial down-sampling factor (8 for SD-style latent diffusion).
    vae_factor: u64,
}

impl DitConfig {
    /// Creates a DiT configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on zero patch size / channels or an
    /// invalid underlying Transformer geometry.
    pub fn new(transformer: TransformerConfig, patch: u64, latent_channels: u64) -> Result<Self> {
        if patch == 0 || latent_channels == 0 {
            return Err(Error::invalid_config("patch size and channels must be non-zero"));
        }
        Ok(DitConfig {
            transformer,
            patch,
            latent_channels,
            vae_factor: 8,
        })
    }

    /// DiT-XL/2: 28 blocks, 16 heads, d_model 1152, patch 2 (Table III).
    ///
    /// # Errors
    ///
    /// Never fails for the built-in geometry; the `Result` mirrors [`DitConfig::new`].
    pub fn xl_2() -> Result<Self> {
        let t = TransformerConfig::new("DiT-XL/2", 28, 16, 1152, 4 * 1152)?;
        DitConfig::new(t, 2, 4)
    }

    /// The underlying Transformer geometry.
    pub fn transformer(&self) -> &TransformerConfig {
        &self.transformer
    }

    /// Patchify patch size.
    pub fn patch(&self) -> u64 {
        self.patch
    }

    /// Latent channels entering patchify.
    pub fn latent_channels(&self) -> u64 {
        self.latent_channels
    }

    /// Number of DiT blocks.
    pub fn blocks(&self) -> u64 {
        self.transformer.layers()
    }

    /// Token count for a square image of `resolution` pixels: the VAE
    /// downsamples by 8×, then patchify groups `patch×patch` latent pixels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if `resolution` is not divisible by
    /// `vae_factor × patch`.
    pub fn tokens_for_resolution(&self, resolution: u64) -> Result<u64> {
        let down = self.vae_factor * self.patch;
        if resolution == 0 || !resolution.is_multiple_of(down) {
            return Err(Error::invalid_shape(format!(
                "resolution {resolution} not divisible by {down}"
            )));
        }
        let side = resolution / down;
        Ok(side * side)
    }

    /// Builds **one DiT block** for `batch` images at `resolution`
    /// (Fig. 2c): conditioning MLP, modulated attention, modulated MLP.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the resolution or batch size.
    pub fn block(&self, batch: u64, resolution: u64) -> Result<Workload> {
        if batch == 0 {
            return Err(Error::invalid_shape("batch must be non-zero"));
        }
        let tokens = self.tokens_for_resolution(resolution)?;
        let t = &self.transformer;
        let d = t.d_model();
        let dtype = t.dtype();
        let rows = batch * tokens;
        let mut w = Workload::new(format!(
            "{} block (B={batch}, {resolution}x{resolution})",
            t.name()
        ));

        // adaLN conditioning: per-image MLP d -> 6d producing shift/scale/gate
        // for both sub-blocks.
        w.begin_segment("conditioning", Phase::Conditioning);
        w.push(OpInstance::new(
            "Conditioning MLP",
            OpCategory::Conditioning,
            Op::Gemm { shape: GemmShape::new(batch, d, 6 * d)?, dtype },
        ));
        w.begin_segment("attention", Phase::Prefill);
        w.push(OpInstance::new(
            "LayerNorm (attn)",
            OpCategory::LayerNorm,
            Op::LayerNorm { rows, d },
        ));
        w.push(OpInstance::new(
            "Shift & Scale (attn)",
            OpCategory::Conditioning,
            Op::Elementwise { elems: rows * d, ops_per_elem: 2 },
        ));
        w.push(OpInstance::new(
            "QKV Gen",
            OpCategory::QkvGen,
            Op::Gemm { shape: GemmShape::new(rows, d, 3 * d)?, dtype },
        ));
        w.push(OpInstance::new(
            "Q x K^T",
            OpCategory::Attention,
            Op::BatchedMatmul {
                batch: batch * t.heads(),
                shape: GemmShape::new(tokens, t.d_head(), tokens)?,
                dtype,
                static_weights: false,
            },
        ));
        w.push(OpInstance::new(
            "Softmax",
            OpCategory::Attention,
            Op::Softmax { rows: batch * t.heads() * tokens, cols: tokens },
        ));
        w.push(OpInstance::new(
            "S x V",
            OpCategory::Attention,
            Op::BatchedMatmul {
                batch: batch * t.heads(),
                shape: GemmShape::new(tokens, tokens, t.d_head())?,
                dtype,
                static_weights: false,
            },
        ));
        w.push(OpInstance::new(
            "Proj",
            OpCategory::Projection,
            Op::Gemm { shape: GemmShape::new(rows, d, d)?, dtype },
        ));
        w.push(OpInstance::new(
            "Scale + Residual (attn)",
            OpCategory::Conditioning,
            Op::Elementwise { elems: rows * d, ops_per_elem: 2 },
        ));
        w.begin_segment("mlp", Phase::Prefill);
        w.push(OpInstance::new(
            "LayerNorm (MLP)",
            OpCategory::LayerNorm,
            Op::LayerNorm { rows, d },
        ));
        w.push(OpInstance::new(
            "Shift & Scale (MLP)",
            OpCategory::Conditioning,
            Op::Elementwise { elems: rows * d, ops_per_elem: 2 },
        ));
        w.push(OpInstance::new(
            "FFN1",
            OpCategory::Ffn1,
            Op::Gemm { shape: GemmShape::new(rows, d, t.d_ff())?, dtype },
        ));
        w.push(OpInstance::new(
            "GeLU",
            OpCategory::Gelu,
            Op::Gelu { elems: rows * t.d_ff() },
        ));
        w.push(OpInstance::new(
            "FFN2",
            OpCategory::Ffn2,
            Op::Gemm { shape: GemmShape::new(rows, t.d_ff(), d)?, dtype },
        ));
        w.push(OpInstance::new(
            "Scale + Residual (MLP)",
            OpCategory::Conditioning,
            Op::Elementwise { elems: rows * d, ops_per_elem: 2 },
        ));
        Ok(w)
    }

    /// Builds the full DiT forward pass for one diffusion step: patchify +
    /// timestep/label embedding, all blocks, final LayerNorm + linear +
    /// unpatchify (Fig. 2c, used for the Fig. 2d breakdown).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the resolution or batch size.
    pub fn full_forward(&self, batch: u64, resolution: u64) -> Result<Workload> {
        let tokens = self.tokens_for_resolution(resolution)?;
        let t = &self.transformer;
        let d = t.d_model();
        let dtype = t.dtype();
        let rows = batch * tokens;
        let patch_in = self.patch * self.patch * self.latent_channels;
        let mut w = Workload::new(format!(
            "{} full forward (B={batch}, {resolution}x{resolution})",
            t.name()
        ));

        // Pre-process: patchify projection + timestep/label embedding MLPs.
        w.begin_segment("pre-process", Phase::PrePost);
        w.push(OpInstance::new(
            "Patchify",
            OpCategory::Embedding,
            Op::Gemm { shape: GemmShape::new(rows, patch_in, d)?, dtype },
        ));
        w.push(OpInstance::new(
            "Timestep/Label embed",
            OpCategory::Embedding,
            Op::Gemm { shape: GemmShape::new(batch, d, d)?, dtype },
        ));

        let block = self.block(batch, resolution)?;
        w.extend_repeated(&block, self.blocks());

        // Post-process: final adaLN + linear back to patch pixels + reshape.
        w.begin_segment("post-process", Phase::PrePost);
        w.push(OpInstance::new(
            "Final LayerNorm",
            OpCategory::Head,
            Op::LayerNorm { rows, d },
        ));
        w.push(OpInstance::new(
            "Linear & Reshape",
            OpCategory::Head,
            // Predicts noise (and variance): 2x latent channels per pixel.
            Op::Gemm { shape: GemmShape::new(rows, d, 2 * patch_in)?, dtype },
        ));
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xl2_matches_table3() {
        let dit = DitConfig::xl_2().unwrap();
        assert_eq!(dit.blocks(), 28);
        assert_eq!(dit.transformer().heads(), 16);
        assert_eq!(dit.transformer().d_model(), 1152);
    }

    #[test]
    fn token_counts() {
        let dit = DitConfig::xl_2().unwrap();
        assert_eq!(dit.tokens_for_resolution(256).unwrap(), 256);
        assert_eq!(dit.tokens_for_resolution(512).unwrap(), 1024);
        assert!(dit.tokens_for_resolution(500).is_err());
        assert!(dit.tokens_for_resolution(0).is_err());
    }

    #[test]
    fn block_contains_conditioning() {
        let w = DitConfig::xl_2().unwrap().block(8, 512).unwrap();
        assert!(w.macs_in(OpCategory::Conditioning) > 0);
        assert!(w.categories().contains(&OpCategory::Conditioning));
    }

    #[test]
    fn block_and_full_forward_are_phase_segmented() {
        let dit = DitConfig::xl_2().unwrap();
        let block = dit.block(8, 512).unwrap();
        let names: Vec<&str> = block.segments().map(|s| s.name()).collect();
        assert_eq!(names, vec!["conditioning", "attention", "mlp"]);
        assert_eq!(block.phases(), vec![Phase::Conditioning, Phase::Prefill]);
        assert_eq!(
            block.macs_in_phase(Phase::Conditioning) + block.macs_in_phase(Phase::Prefill),
            block.total_macs()
        );

        let full = dit.full_forward(8, 256).unwrap();
        let first = full.segments().next().unwrap();
        assert_eq!((first.name(), first.phase()), ("pre-process", Phase::PrePost));
        let last = full.segments().last().unwrap();
        assert_eq!((last.name(), last.phase()), ("post-process", Phase::PrePost));
        let seg_bytes: u64 = full.segments().map(|s| s.main_memory_bytes().get()).sum();
        assert_eq!(seg_bytes, full.main_memory_bytes().get());
    }

    #[test]
    fn block_gemm_macs_match_closed_form() {
        let dit = DitConfig::xl_2().unwrap();
        let (b, res) = (8, 512);
        let tokens = dit.tokens_for_resolution(res).unwrap();
        let t = dit.transformer();
        let (d, dff) = (t.d_model(), t.d_ff());
        let rows = b * tokens;
        let expected = b * d * 6 * d // conditioning MLP
            + rows * d * 3 * d
            + rows * d * d
            + 2 * rows * d * dff
            + 2 * b * t.heads() * tokens * tokens * t.d_head();
        assert_eq!(dit.block(b, res).unwrap().total_macs(), expected);
    }

    #[test]
    fn full_forward_dominated_by_blocks() {
        let dit = DitConfig::xl_2().unwrap();
        let full = dit.full_forward(8, 512).unwrap();
        let block = dit.block(8, 512).unwrap();
        let blocks_macs = block.total_macs() * dit.blocks();
        let frac = blocks_macs as f64 / full.total_macs() as f64;
        assert!(frac > 0.98, "blocks are {frac:.4} of total MACs");
    }
}
