//! The operator IR consumed by the simulator.

use std::fmt;

use serde::{Deserialize, Serialize};

use cimtpu_units::{Bytes, DataType, GemmShape};

/// Which Fig. 6 / Fig. 2 reporting bucket an operator belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OpCategory {
    /// Fused Q/K/V generation GEMM.
    QkvGen,
    /// Attention score/context matmuls (Q×Kᵀ, S×Vᵀ) and softmax.
    Attention,
    /// Attention output projection.
    Projection,
    /// First feed-forward GEMM.
    Ffn1,
    /// Second feed-forward GEMM.
    Ffn2,
    /// Layer normalization.
    LayerNorm,
    /// GeLU activation (tanh approximation, as in DiT).
    Gelu,
    /// DiT adaLN conditioning MLP and shift/scale modulation.
    Conditioning,
    /// Token embedding / patchify (pre-processing).
    Embedding,
    /// Prediction head / final linear (post-processing).
    Head,
    /// Cross-device communication.
    Collective,
    /// Residual adds, KV-cache writes, and other glue.
    Other,
}

impl OpCategory {
    /// All categories in the order the paper's Fig. 6 rows use.
    pub const FIG6_ORDER: [OpCategory; 8] = [
        OpCategory::QkvGen,
        OpCategory::Attention,
        OpCategory::Projection,
        OpCategory::Ffn1,
        OpCategory::Ffn2,
        OpCategory::LayerNorm,
        OpCategory::Gelu,
        OpCategory::Conditioning,
    ];

    /// Human-readable label matching the paper's figure legends.
    pub const fn label(self) -> &'static str {
        match self {
            OpCategory::QkvGen => "QKV Gen",
            OpCategory::Attention => "Attention",
            OpCategory::Projection => "Proj.",
            OpCategory::Ffn1 => "FFN1",
            OpCategory::Ffn2 => "FFN2",
            OpCategory::LayerNorm => "LayerNorm",
            OpCategory::Gelu => "GeLU",
            OpCategory::Conditioning => "Conditioning",
            OpCategory::Embedding => "Embedding",
            OpCategory::Head => "Head",
            OpCategory::Collective => "Collective",
            OpCategory::Other => "Other",
        }
    }
}

impl fmt::Display for OpCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One operator in a workload.
///
/// The distinction between [`Op::Gemm`] and [`Op::BatchedMatmul`] is the
/// crux of the paper's analysis: `Gemm` weights live in main memory and are
/// reused across the whole `m` dimension, while `BatchedMatmul` models
/// attention matmuls whose "weights" (keys/values) differ per batch×head
/// item, giving the MXU *zero* weight reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Op {
    /// Weight GEMM `[m×k]·[k×n]`; weights stream from main memory unless
    /// already resident on chip.
    Gemm {
        /// The GEMM shape.
        shape: GemmShape,
        /// Operand precision.
        dtype: DataType,
    },
    /// `batch` independent matmuls with per-item "weight" operands.
    BatchedMatmul {
        /// Number of independent matmuls (batch × heads, or experts).
        batch: u64,
        /// Per-item matmul shape.
        shape: GemmShape,
        /// Operand precision.
        dtype: DataType,
        /// Whether the per-item weights are *static* model parameters
        /// (MoE experts — pre-stageable through a systolic weight FIFO)
        /// rather than dynamic activations/KV (attention — which the
        /// systolic array must serialize).
        static_weights: bool,
    },
    /// Row-wise softmax over a `[rows × cols]` matrix (online normalizer).
    Softmax {
        /// Number of independent rows.
        rows: u64,
        /// Row length.
        cols: u64,
    },
    /// Layer normalization over `rows` vectors of length `d`.
    LayerNorm {
        /// Number of vectors.
        rows: u64,
        /// Vector length.
        d: u64,
    },
    /// GeLU (tanh approximation) over `elems` elements.
    Gelu {
        /// Element count.
        elems: u64,
    },
    /// Generic elementwise work (`ops_per_elem` vector ops per element).
    Elementwise {
        /// Element count.
        elems: u64,
        /// Vector operations per element.
        ops_per_elem: u32,
    },
    /// Embedding-table lookup for `tokens` tokens of width `d_model`
    /// (memory-bound gather from main memory).
    EmbeddingLookup {
        /// Tokens looked up.
        tokens: u64,
        /// Embedding width.
        d_model: u64,
        /// Table precision.
        dtype: DataType,
    },
    /// Ring all-reduce of `bytes` across the participating devices.
    AllReduce {
        /// Payload size per device.
        bytes: Bytes,
    },
}

impl Op {
    /// Total MAC operations performed by this op (zero for vector ops).
    pub fn macs(&self) -> u64 {
        match *self {
            Op::Gemm { shape, .. } => shape.macs(),
            Op::BatchedMatmul { batch, shape, .. } => batch * shape.macs(),
            _ => 0,
        }
    }

    /// Whether this op runs on the matrix unit.
    pub fn is_matrix_op(&self) -> bool {
        matches!(self, Op::Gemm { .. } | Op::BatchedMatmul { .. })
    }

    /// Unique main-memory bytes this op must stream in (weights, embedding
    /// rows, KV-cache), assuming activations are on chip.
    pub fn main_memory_bytes(&self) -> Bytes {
        match *self {
            Op::Gemm { shape, dtype } => shape.weight_bytes(dtype),
            // Per-item "weights" (K or V slices) all distinct.
            Op::BatchedMatmul { batch, shape, dtype, .. } => shape.weight_bytes(dtype) * batch,
            Op::EmbeddingLookup { tokens, d_model, dtype } => {
                Bytes::new(tokens * d_model * dtype.size_bytes())
            }
            _ => Bytes::ZERO,
        }
    }
}

/// A named, categorized, repeated operator.
///
/// `count` expresses exact repetition (e.g. 48 identical Transformer
/// layers) without materializing each copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpInstance {
    name: String,
    category: OpCategory,
    op: Op,
    count: u64,
}

impl OpInstance {
    /// Creates an instance executed once.
    pub fn new(name: impl Into<String>, category: OpCategory, op: Op) -> Self {
        OpInstance {
            name: name.into(),
            category,
            op,
            count: 1,
        }
    }

    /// Sets the repetition count.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn repeated(mut self, count: u64) -> Self {
        assert!(count > 0, "op repetition count must be non-zero");
        self.count = count;
        self
    }

    /// The display name (e.g. `"Q x K^T"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The reporting category.
    pub fn category(&self) -> OpCategory {
        self.category
    }

    /// The operator itself.
    pub fn op(&self) -> &Op {
        &self.op
    }

    /// How many times the operator executes.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// MACs across all repetitions.
    pub fn total_macs(&self) -> u64 {
        self.op.macs() * self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_macs_and_bytes() {
        let shape = GemmShape::new(8, 7168, 21504).unwrap();
        let op = Op::Gemm { shape, dtype: DataType::Int8 };
        assert_eq!(op.macs(), 8 * 7168 * 21504);
        assert_eq!(op.main_memory_bytes().get(), 7168 * 21504);
    }

    #[test]
    fn batched_matmul_scales_by_batch() {
        let shape = GemmShape::gemv(128, 1024).unwrap();
        let op = Op::BatchedMatmul { batch: 448, shape, dtype: DataType::Int8, static_weights: false };
        assert_eq!(op.macs(), 448 * 128 * 1024);
        assert_eq!(op.main_memory_bytes().get(), 448 * 128 * 1024);
    }

    #[test]
    fn vector_ops_have_no_macs() {
        assert_eq!(Op::Softmax { rows: 10, cols: 10 }.macs(), 0);
        assert_eq!(Op::Gelu { elems: 100 }.macs(), 0);
        assert!(!Op::LayerNorm { rows: 1, d: 1 }.is_matrix_op());
    }

    #[test]
    fn repeated_multiplies_macs() {
        let shape = GemmShape::new(2, 3, 4).unwrap();
        let inst = OpInstance::new("x", OpCategory::Other, Op::Gemm { shape, dtype: DataType::Int8 })
            .repeated(48);
        assert_eq!(inst.total_macs(), 48 * 24);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_count_panics() {
        let shape = GemmShape::new(1, 1, 1).unwrap();
        let _ = OpInstance::new("x", OpCategory::Other, Op::Gemm { shape, dtype: DataType::Int8 })
            .repeated(0);
    }

    #[test]
    fn category_labels_match_paper() {
        assert_eq!(OpCategory::QkvGen.label(), "QKV Gen");
        assert_eq!(OpCategory::Projection.label(), "Proj.");
        assert_eq!(OpCategory::FIG6_ORDER.len(), 8);
    }
}
