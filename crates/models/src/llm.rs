//! Full-LLM model graphs and inference specifications.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Error, GemmShape, Result};

use crate::op::{Op, OpCategory, OpInstance};
use crate::phase::Phase;
use crate::transformer::TransformerConfig;
use crate::workload::Workload;

/// A full LLM: Transformer stack plus embedding table and prediction head
/// (Fig. 2a).
///
/// # Examples
///
/// ```
/// use cimtpu_models::presets;
/// let llama = presets::llama2_13b_full();
/// let w = llama.full_prefill(8, 256)?;
/// assert!(w.ops().iter().any(|o| o.name() == "Token Embedding"));
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LlmModelConfig {
    transformer: TransformerConfig,
    vocab: u64,
}

impl LlmModelConfig {
    /// Creates a full-model configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `vocab` is zero.
    pub fn new(transformer: TransformerConfig, vocab: u64) -> Result<Self> {
        if vocab == 0 {
            return Err(Error::invalid_config("vocabulary must be non-zero"));
        }
        Ok(LlmModelConfig { transformer, vocab })
    }

    /// The Transformer-layer geometry.
    pub fn transformer(&self) -> &TransformerConfig {
        &self.transformer
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> u64 {
        self.vocab
    }

    /// Total weight parameters (layers + embedding + head, tied counted once
    /// each as in the GPT-3 convention).
    pub fn total_params(&self) -> u64 {
        self.transformer.weight_params_per_layer() * self.transformer.layers()
            + 2 * self.vocab * self.transformer.d_model()
    }

    /// Full-model prefill: token embedding, every layer, prediction head
    /// for the last position.
    ///
    /// # Errors
    ///
    /// Propagates shape errors for zero `batch`/`seq`.
    pub fn full_prefill(&self, batch: u64, seq: u64) -> Result<Workload> {
        let t = &self.transformer;
        let dtype = t.dtype();
        let mut w = Workload::new(format!(
            "{} full prefill (B={batch}, L={seq})",
            t.name()
        ));
        w.begin_segment("embedding", Phase::PrePost);
        w.push(OpInstance::new(
            "Token Embedding",
            OpCategory::Embedding,
            Op::EmbeddingLookup { tokens: batch * seq, d_model: t.d_model(), dtype },
        ));
        let layer = t.prefill_layer(batch, seq)?;
        w.extend_repeated(&layer, t.layers());
        // Head evaluated once per sequence (next-token logits).
        w.begin_segment("head", Phase::PrePost);
        w.push(OpInstance::new(
            "Prediction Head",
            OpCategory::Head,
            Op::Gemm { shape: GemmShape::new(batch, t.d_model(), self.vocab)?, dtype },
        ));
        Ok(w)
    }

    /// Full-model single decode step at context length `ctx`: embedding for
    /// the incoming token, every layer, prediction head.
    ///
    /// # Errors
    ///
    /// Propagates shape errors for zero `batch`/`ctx`.
    pub fn full_decode_step(&self, batch: u64, ctx: u64) -> Result<Workload> {
        let t = &self.transformer;
        let dtype = t.dtype();
        let mut w = Workload::new(format!(
            "{} full decode (B={batch}, ctx={ctx})",
            t.name()
        ));
        w.begin_segment("embedding", Phase::PrePost);
        w.push(OpInstance::new(
            "Token Embedding",
            OpCategory::Embedding,
            Op::EmbeddingLookup { tokens: batch, d_model: t.d_model(), dtype },
        ));
        let layer = t.decode_layer(batch, ctx)?;
        w.extend_repeated(&layer, t.layers());
        w.begin_segment("head", Phase::PrePost);
        w.push(OpInstance::new(
            "Prediction Head",
            OpCategory::Head,
            Op::Gemm { shape: GemmShape::new(batch, t.d_model(), self.vocab)?, dtype },
        ));
        Ok(w)
    }
}

/// End-to-end LLM inference shape: input (prompt) and output lengths.
///
/// The paper's Fig. 7 uses 1024 input and 512 output tokens "to reflect
/// typical real-world scenarios, in which Decoding dominates".
///
/// # Examples
///
/// ```
/// use cimtpu_models::LlmInferenceSpec;
/// let spec = LlmInferenceSpec::paper_fig7(8)?;
/// assert_eq!((spec.input_len(), spec.output_len()), (1024, 512));
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LlmInferenceSpec {
    batch: u64,
    input_len: u64,
    output_len: u64,
}

impl LlmInferenceSpec {
    /// Creates an inference spec.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if any field is zero.
    pub fn new(batch: u64, input_len: u64, output_len: u64) -> Result<Self> {
        if batch == 0 || input_len == 0 || output_len == 0 {
            return Err(Error::invalid_shape(
                "batch, input_len and output_len must be non-zero",
            ));
        }
        Ok(LlmInferenceSpec { batch, input_len, output_len })
    }

    /// The Fig. 7 configuration: 1024 input, 512 output tokens.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if `batch` is zero.
    pub fn paper_fig7(batch: u64) -> Result<Self> {
        LlmInferenceSpec::new(batch, 1024, 512)
    }

    /// Batch size.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Prompt length.
    pub fn input_len(&self) -> u64 {
        self.input_len
    }

    /// Generated tokens.
    pub fn output_len(&self) -> u64 {
        self.output_len
    }

    /// Context length at decode step `step` (0-based): the prompt plus all
    /// previously generated tokens plus the current one.
    pub fn ctx_at_step(&self, step: u64) -> u64 {
        self.input_len + step + 1
    }

    /// Representative decode-step context lengths for sampled simulation:
    /// up to `samples` evenly spaced steps (always including first and last).
    ///
    /// Simulating all `output_len` steps is wasteful since per-step cost
    /// varies slowly (linearly in ctx); callers integrate over these samples
    /// with [`LlmInferenceSpec::output_len`] weighting.
    pub fn sampled_decode_steps(&self, samples: u64) -> Vec<u64> {
        let samples = samples.clamp(1, self.output_len);
        if samples == 1 {
            return vec![self.output_len / 2];
        }
        (0..samples)
            .map(|i| (i * (self.output_len - 1)) / (samples - 1))
            .collect()
    }

    /// Precision-weighted total tokens generated across the batch.
    pub fn total_generated_tokens(&self) -> u64 {
        self.batch * self.output_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn full_prefill_structure() {
        let llm = presets::gpt3_30b_full();
        let w = llm.full_prefill(8, 128).unwrap();
        let names: Vec<&str> = w.ops().iter().map(OpInstance::name).collect();
        assert_eq!(names.first(), Some(&"Token Embedding"));
        assert_eq!(names.last(), Some(&"Prediction Head"));
        // Layer ops are repeated 48x.
        let qkv = w.ops().iter().find(|o| o.name() == "QKV Gen").unwrap();
        assert_eq!(qkv.count(), 48);
    }

    #[test]
    fn full_prefill_segments_wrap_layers() {
        use crate::Phase;
        let llm = presets::gpt3_30b_full();
        let w = llm.full_prefill(8, 128).unwrap();
        let first = w.segments().next().unwrap();
        assert_eq!((first.name(), first.phase()), ("embedding", Phase::PrePost));
        let last = w.segments().last().unwrap();
        assert_eq!((last.name(), last.phase()), ("head", Phase::PrePost));
        assert_eq!(
            w.phases(),
            vec![Phase::PrePost, Phase::Prefill]
        );
        assert_eq!(
            w.macs_in_phase(Phase::PrePost) + w.macs_in_phase(Phase::Prefill),
            w.total_macs()
        );
    }

    #[test]
    fn params_scale() {
        // The generic 2-matrix FFN undercounts Llama2's gated FFN (3
        // matrices) slightly; ~10B of the nominal 13B is expected here.
        let llm = presets::llama2_13b_full();
        let billions = llm.total_params() as f64 / 1e9;
        assert!((9.0..14.5).contains(&billions), "got {billions}B params");

        let gpt3 = presets::gpt3_30b_full();
        let billions = gpt3.total_params() as f64 / 1e9;
        assert!((28.0..32.0).contains(&billions), "got {billions}B params");
    }

    #[test]
    fn sampled_steps_cover_range() {
        let spec = LlmInferenceSpec::paper_fig7(8).unwrap();
        let steps = spec.sampled_decode_steps(9);
        assert_eq!(steps.first(), Some(&0));
        assert_eq!(steps.last(), Some(&511));
        assert_eq!(steps.len(), 9);
        assert!(steps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sampled_steps_degenerate_cases() {
        let spec = LlmInferenceSpec::new(1, 16, 1).unwrap();
        assert_eq!(spec.sampled_decode_steps(8), vec![0]);
        let spec = LlmInferenceSpec::new(1, 16, 4).unwrap();
        assert_eq!(spec.sampled_decode_steps(100).len(), 4);
    }

    #[test]
    fn ctx_grows_with_steps() {
        let spec = LlmInferenceSpec::paper_fig7(8).unwrap();
        assert_eq!(spec.ctx_at_step(0), 1025);
        assert_eq!(spec.ctx_at_step(255), 1280); // the paper's "256th token"
    }
}
