//! Shared error type for the workspace.

use std::error;
use std::fmt;

/// Convenience result alias using the workspace [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while configuring or running the simulator.
///
/// # Examples
///
/// ```
/// use cimtpu_units::Error;
/// let e = Error::invalid_config("vector memory must be non-zero");
/// assert!(e.to_string().contains("vector memory"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A hardware or workload configuration was internally inconsistent.
    InvalidConfig(String),
    /// A tensor/tile shape was invalid (zero dimension, overflow, ...).
    InvalidShape(String),
    /// A workload could not be mapped onto the hardware (e.g. a tile that
    /// does not fit into the smallest buffer even at minimum size).
    Unmappable(String),
    /// A named preset (model or architecture) was not found.
    UnknownPreset(String),
    /// A simulator invariant was violated at runtime (a scheduling state
    /// that should be unreachable, a numeric result outside its domain).
    /// Surfacing these as errors instead of panics keeps injected faults
    /// from taking the whole simulator down with them.
    Internal(String),
}

impl Error {
    /// Creates an [`Error::InvalidConfig`].
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        Error::InvalidConfig(msg.into())
    }

    /// Creates an [`Error::InvalidShape`].
    pub fn invalid_shape(msg: impl Into<String>) -> Self {
        Error::InvalidShape(msg.into())
    }

    /// Creates an [`Error::Unmappable`].
    pub fn unmappable(msg: impl Into<String>) -> Self {
        Error::Unmappable(msg.into())
    }

    /// Creates an [`Error::UnknownPreset`].
    pub fn unknown_preset(msg: impl Into<String>) -> Self {
        Error::UnknownPreset(msg.into())
    }

    /// Creates an [`Error::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::InvalidShape(msg) => write!(f, "invalid shape: {msg}"),
            Error::Unmappable(msg) => write!(f, "workload cannot be mapped: {msg}"),
            Error::UnknownPreset(msg) => write!(f, "unknown preset: {msg}"),
            Error::Internal(msg) => write!(f, "internal simulator error: {msg}"),
        }
    }
}

impl error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = Error::unmappable("tile larger than VMEM");
        let s = e.to_string();
        assert!(s.starts_with("workload cannot be mapped"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn internal_display() {
        let e = Error::internal("router returned out-of-range replica");
        let s = e.to_string();
        assert!(s.starts_with("internal simulator error"));
        assert!(s.contains("out-of-range"));
        assert!(!s.ends_with('.'));
    }
}
