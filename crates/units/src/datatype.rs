//! Operand data types supported by the modeled hardware.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Numeric precision of tensor operands.
///
/// The TPUv4i MXU (and its CIM replacement modeled here) natively supports
/// `Int8` and `Bf16`; `Fp32` is included for accumulator and vector-unit
/// accounting.
///
/// # Examples
///
/// ```
/// use cimtpu_units::DataType;
/// assert_eq!(DataType::Int8.size_bytes(), 1);
/// assert_eq!(DataType::Bf16.mantissa_bits(), 8);
/// assert!(DataType::Bf16.is_float());
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 8-bit signed integer (the precision used in the paper's evaluations).
    #[default]
    Int8,
    /// bfloat16: 1 sign, 8 exponent, 7 mantissa bits (8 with hidden one).
    Bf16,
    /// IEEE-754 single precision, used for accumulators.
    Fp32,
}

impl DataType {
    /// All MXU-native operand types.
    pub const MXU_NATIVE: [DataType; 2] = [DataType::Int8, DataType::Bf16];

    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> u64 {
        match self {
            DataType::Int8 => 1,
            DataType::Bf16 => 2,
            DataType::Fp32 => 4,
        }
    }

    /// Size of one element in bits.
    pub const fn size_bits(self) -> u32 {
        self.size_bytes() as u32 * 8
    }

    /// Number of mantissa bits fed to the integer MAC datapath.
    ///
    /// For `Int8` the whole operand is the "mantissa". For floating-point
    /// types this is the significand width *including* the hidden leading
    /// one, which is what the CIM pre-processing unit materializes before
    /// loading mantissas into the bitcell array.
    pub const fn mantissa_bits(self) -> u32 {
        match self {
            DataType::Int8 => 8,
            DataType::Bf16 => 8,
            DataType::Fp32 => 24,
        }
    }

    /// Number of exponent bits (zero for integer types).
    pub const fn exponent_bits(self) -> u32 {
        match self {
            DataType::Int8 => 0,
            DataType::Bf16 => 8,
            DataType::Fp32 => 8,
        }
    }

    /// Whether this is a floating-point type (requires the CIM
    /// pre/post-processing pipeline for exponent alignment).
    pub const fn is_float(self) -> bool {
        matches!(self, DataType::Bf16 | DataType::Fp32)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int8 => "INT8",
            DataType::Bf16 => "BF16",
            DataType::Fp32 => "FP32",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_consistent() {
        for dt in [DataType::Int8, DataType::Bf16, DataType::Fp32] {
            assert_eq!(dt.size_bits(), dt.size_bytes() as u32 * 8);
        }
    }

    #[test]
    fn int8_has_no_exponent() {
        assert_eq!(DataType::Int8.exponent_bits(), 0);
        assert!(!DataType::Int8.is_float());
    }

    #[test]
    fn bf16_layout() {
        // 1 + 8 + 7 = 16 bits; mantissa_bits includes the hidden one.
        assert_eq!(DataType::Bf16.size_bits(), 16);
        assert_eq!(DataType::Bf16.exponent_bits(), 8);
        assert_eq!(DataType::Bf16.mantissa_bits(), 8);
    }

    #[test]
    fn display_matches_paper_convention() {
        assert_eq!(DataType::Int8.to_string(), "INT8");
        assert_eq!(DataType::Bf16.to_string(), "BF16");
    }
}
