//! Newtype quantities with explicit-unit constructors and accessors.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A count of clock cycles on some clock domain.
///
/// `Cycles` is a plain count; convert to wall-clock time with [`Cycles::at`]
/// and a [`Frequency`].
///
/// # Examples
///
/// ```
/// use cimtpu_units::{Cycles, Frequency};
/// let c = Cycles::new(100) + Cycles::new(28);
/// assert_eq!(c.get(), 128);
/// assert!((c.at(Frequency::from_ghz(1.0)).as_nanos() - 128.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(count: u64) -> Self {
        Cycles(count)
    }

    /// Returns the raw count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts to wall-clock time on a clock running at `clock`.
    pub fn at(self, clock: Frequency) -> Seconds {
        Seconds::new(self.0 as f64 / clock.as_hz())
    }

    /// Saturating subtraction; clamps at zero instead of underflowing.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Largest of two cycle counts.
    #[must_use]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// Smallest of two cycle counts.
    #[must_use]
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// Generates an `f64`-backed quantity newtype with arithmetic and `Sum`.
macro_rules! f64_quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a quantity from its base-unit value.
            ///
            /// # Panics
            ///
            /// Panics (debug assertions only) if `value` is NaN.
            pub fn new(value: f64) -> Self {
                debug_assert!(!value.is_nan(), concat!(stringify!($name), " cannot be NaN"));
                $name(value)
            }

            /// Returns the value in the base unit.
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Largest of two quantities.
            #[must_use]
            pub fn max(self, rhs: $name) -> $name {
                $name(self.0.max(rhs.0))
            }

            /// Smallest of two quantities.
            #[must_use]
            pub fn min(self, rhs: $name) -> $name {
                $name(self.0.min(rhs.0))
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, Add::add)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.6e} {}", self.0, $unit)
            }
        }
    };
}

f64_quantity!(
    /// A duration in seconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use cimtpu_units::Seconds;
    /// let t = Seconds::from_millis(1.5);
    /// assert!((t.as_micros() - 1500.0).abs() < 1e-9);
    /// ```
    Seconds,
    "s"
);

impl Seconds {
    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Seconds::new(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Seconds::new(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Seconds::new(ns * 1e-9)
    }

    /// The duration in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.get() * 1e3
    }

    /// The duration in microseconds.
    pub fn as_micros(self) -> f64 {
        self.get() * 1e6
    }

    /// The duration in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.get() * 1e9
    }

    /// Converts to a cycle count on `clock`, rounding up.
    pub fn to_cycles(self, clock: Frequency) -> Cycles {
        Cycles::new((self.get() * clock.as_hz()).ceil() as u64)
    }
}

f64_quantity!(
    /// An amount of energy in joules.
    ///
    /// # Examples
    ///
    /// ```
    /// use cimtpu_units::Joules;
    /// let e = Joules::from_picojoules(2.6) * 1e12;
    /// assert!((e.get() - 2.6).abs() < 1e-9);
    /// ```
    Joules,
    "J"
);

/// Convenience alias: energy is measured in [`Joules`].
pub type Energy = Joules;

impl Joules {
    /// Creates an energy from picojoules.
    pub fn from_picojoules(pj: f64) -> Self {
        Joules::new(pj * 1e-12)
    }

    /// Creates an energy from nanojoules.
    pub fn from_nanojoules(nj: f64) -> Self {
        Joules::new(nj * 1e-9)
    }

    /// Creates an energy from microjoules.
    pub fn from_microjoules(uj: f64) -> Self {
        Joules::new(uj * 1e-6)
    }

    /// Creates an energy from millijoules.
    pub fn from_millijoules(mj: f64) -> Self {
        Joules::new(mj * 1e-3)
    }

    /// The energy in picojoules.
    pub fn as_picojoules(self) -> f64 {
        self.get() * 1e12
    }

    /// The energy in millijoules.
    pub fn as_millijoules(self) -> f64 {
        self.get() * 1e3
    }

    /// Average power when spent over `t`.
    pub fn over(self, t: Seconds) -> Watts {
        Watts::new(self.get() / t.get())
    }
}

f64_quantity!(
    /// Power in watts.
    ///
    /// # Examples
    ///
    /// ```
    /// use cimtpu_units::{Watts, Seconds};
    /// let e = Watts::new(175.0).for_duration(Seconds::from_millis(2.0));
    /// assert!((e.as_millijoules() - 350.0).abs() < 1e-9);
    /// ```
    Watts,
    "W"
);

impl Watts {
    /// Creates power from milliwatts.
    pub fn from_milliwatts(mw: f64) -> Self {
        Watts::new(mw * 1e-3)
    }

    /// Energy dissipated when sustained for `t`.
    pub fn for_duration(self, t: Seconds) -> Joules {
        Joules::new(self.get() * t.get())
    }
}

/// A byte count.
///
/// # Examples
///
/// ```
/// use cimtpu_units::Bytes;
/// assert_eq!(Bytes::from_mib(16).get(), 16 * 1024 * 1024);
/// assert_eq!(Bytes::from_kib(1) + Bytes::new(24), Bytes::new(1048));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    pub const fn new(count: u64) -> Self {
        Bytes(count)
    }

    /// Creates a byte count from KiB.
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Creates a byte count from MiB.
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Creates a byte count from GiB.
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * 1024 * 1024 * 1024)
    }

    /// Returns the raw count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The count in MiB as a float.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Largest of two byte counts.
    #[must_use]
    pub fn max(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.max(rhs.0))
    }

    /// Smallest of two byte counts.
    #[must_use]
    pub fn min(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.min(rhs.0))
    }

    /// Saturating subtraction; clamps at zero.
    #[must_use]
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 * 1024 {
            write!(f, "{:.2} GiB", self.0 as f64 / (1024.0 * 1024.0 * 1024.0))
        } else if self.0 >= 1024 * 1024 {
            write!(f, "{:.2} MiB", self.as_mib())
        } else if self.0 >= 1024 {
            write!(f, "{:.2} KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

f64_quantity!(
    /// A data-transfer rate in bytes per second.
    ///
    /// Note: constructors use decimal giga (`1 GB/s = 1e9 B/s`) to match
    /// vendor-style bandwidth figures (e.g. the 614 GB/s HBM of TPUv4i).
    ///
    /// # Examples
    ///
    /// ```
    /// use cimtpu_units::{Bandwidth, Bytes};
    /// let bw = Bandwidth::from_gb_per_s(100.0);
    /// let t = bw.transfer_time(Bytes::new(100_000_000_000));
    /// assert!((t.get() - 1.0).abs() < 1e-9);
    /// ```
    Bandwidth,
    "B/s"
);

impl Bandwidth {
    /// Creates a bandwidth from decimal GB/s.
    pub fn from_gb_per_s(gb: f64) -> Self {
        Bandwidth::new(gb * 1e9)
    }

    /// The bandwidth in decimal GB/s.
    pub fn as_gb_per_s(self) -> f64 {
        self.get() / 1e9
    }

    /// Time to move `bytes` at this rate.
    ///
    /// A zero bandwidth with zero bytes yields zero time; a zero bandwidth
    /// with non-zero bytes yields infinite time (the transfer never
    /// completes), which keeps `max`-based roofline code well behaved.
    pub fn transfer_time(self, bytes: Bytes) -> Seconds {
        if bytes.get() == 0 {
            return Seconds::ZERO;
        }
        Seconds::new(bytes.get() as f64 / self.get())
    }
}

f64_quantity!(
    /// A clock frequency in hertz.
    ///
    /// # Examples
    ///
    /// ```
    /// use cimtpu_units::Frequency;
    /// assert!((Frequency::from_ghz(1.05).as_hz() - 1.05e9).abs() < 1.0);
    /// ```
    Frequency,
    "Hz"
);

impl Frequency {
    /// Creates a frequency from MHz.
    pub fn from_mhz(mhz: f64) -> Self {
        Frequency::new(mhz * 1e6)
    }

    /// Creates a frequency from GHz.
    pub fn from_ghz(ghz: f64) -> Self {
        Frequency::new(ghz * 1e9)
    }

    /// The frequency in hertz.
    pub fn as_hz(self) -> f64 {
        self.get()
    }

    /// The clock period.
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.get())
    }
}

f64_quantity!(
    /// Silicon area in square millimetres.
    ///
    /// # Examples
    ///
    /// ```
    /// use cimtpu_units::Area;
    /// let a = Area::from_mm2(4.0) + Area::from_um2(1_000_000.0);
    /// assert!((a.as_mm2() - 5.0).abs() < 1e-9);
    /// ```
    Area,
    "mm^2"
);

impl Area {
    /// Creates an area from mm².
    pub fn from_mm2(mm2: f64) -> Self {
        Area::new(mm2)
    }

    /// Creates an area from µm².
    pub fn from_um2(um2: f64) -> Self {
        Area::new(um2 * 1e-6)
    }

    /// The area in mm².
    pub fn as_mm2(self) -> f64 {
        self.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_to_time_round_trip() {
        let clk = Frequency::from_ghz(1.05);
        let c = Cycles::new(1_050_000_000);
        let t = c.at(clk);
        assert!((t.get() - 1.0).abs() < 1e-12);
        assert_eq!(t.to_cycles(clk), c);
    }

    #[test]
    fn cycles_saturating_sub_clamps() {
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(10)), Cycles::ZERO);
        assert_eq!(Cycles::new(10).saturating_sub(Cycles::new(3)), Cycles::new(7));
    }

    #[test]
    fn bytes_units() {
        assert_eq!(Bytes::from_gib(8).get(), 8 * 1024 * 1024 * 1024);
        assert_eq!(Bytes::from_mib(128).as_mib(), 128.0);
        assert_eq!(format!("{}", Bytes::from_kib(2)), "2.00 KiB");
        assert_eq!(format!("{}", Bytes::new(100)), "100 B");
    }

    #[test]
    fn bandwidth_transfer_time() {
        let hbm = Bandwidth::from_gb_per_s(614.0);
        let t = hbm.transfer_time(Bytes::new(614_000_000));
        assert!((t.as_millis() - 1.0).abs() < 1e-9);
        // Zero bytes is free even with zero bandwidth.
        assert_eq!(Bandwidth::ZERO.transfer_time(Bytes::ZERO), Seconds::ZERO);
        // Non-zero bytes at zero bandwidth never completes.
        assert!(Bandwidth::ZERO.transfer_time(Bytes::new(1)).get().is_infinite());
    }

    #[test]
    fn energy_power_duality() {
        let p = Watts::new(175.0);
        let t = Seconds::from_millis(10.0);
        let e = p.for_duration(t);
        assert!((e.over(t).get() - 175.0).abs() < 1e-9);
    }

    #[test]
    fn joules_unit_constructors() {
        assert!((Joules::from_picojoules(1e12).get() - 1.0).abs() < 1e-12);
        assert!((Joules::from_nanojoules(1e9).get() - 1.0).abs() < 1e-12);
        assert!((Joules::from_microjoules(1e6).get() - 1.0).abs() < 1e-12);
        assert!((Joules::from_millijoules(1e3).get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantity_sum_and_ratio() {
        let total: Seconds = [1.0, 2.0, 3.0].iter().map(|&s| Seconds::new(s)).sum();
        assert!((total.get() - 6.0).abs() < 1e-12);
        assert!((Seconds::new(3.0) / Seconds::new(1.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_period_inverts() {
        let f = Frequency::from_mhz(940.0);
        assert!((f.period().get() * f.as_hz() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn area_units() {
        assert!((Area::from_um2(2.5e6).as_mm2() - 2.5).abs() < 1e-12);
    }
}
