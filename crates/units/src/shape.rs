//! Matrix-multiplication shapes shared by every engine model.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Bytes, DataType, Error, Result};

/// The shape of a single GEMM: `[m × k] · [k × n] = [m × n]`.
///
/// A GEMV is simply a `GemmShape` with `m == 1`; the engine models decide
/// how (in)efficiently they handle that case, which is the crux of the
/// paper's LLM-decoding analysis.
///
/// # Examples
///
/// ```
/// use cimtpu_units::{GemmShape, DataType};
/// let g = GemmShape::new(8, 7168, 7168)?;
/// assert_eq!(g.macs(), 8 * 7168 * 7168);
/// assert_eq!(g.weight_bytes(DataType::Int8).get(), 7168 * 7168);
/// assert!(!g.is_gemv());
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    m: u64,
    k: u64,
    n: u64,
}

impl GemmShape {
    /// Creates a GEMM shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if any dimension is zero.
    pub fn new(m: u64, k: u64, n: u64) -> Result<Self> {
        if m == 0 || k == 0 || n == 0 {
            return Err(Error::invalid_shape(format!(
                "gemm dimensions must be non-zero, got [{m} x {k}] . [{k} x {n}]"
            )));
        }
        Ok(GemmShape { m, k, n })
    }

    /// Creates a GEMV shape (`m == 1`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if `k` or `n` is zero.
    pub fn gemv(k: u64, n: u64) -> Result<Self> {
        GemmShape::new(1, k, n)
    }

    /// Number of rows of the activation operand.
    pub const fn m(self) -> u64 {
        self.m
    }

    /// Contraction (inner) dimension.
    pub const fn k(self) -> u64 {
        self.k
    }

    /// Number of output columns (weight output channels).
    pub const fn n(self) -> u64 {
        self.n
    }

    /// Whether this shape degenerates to a matrix-vector product.
    pub const fn is_gemv(self) -> bool {
        self.m == 1
    }

    /// Total multiply-accumulate operations.
    pub const fn macs(self) -> u64 {
        self.m * self.k * self.n
    }

    /// Total arithmetic operations (2 per MAC: multiply + add).
    pub const fn ops(self) -> u64 {
        2 * self.macs()
    }

    /// Bytes of the `[m × k]` activation operand.
    pub fn activation_bytes(self, dtype: DataType) -> Bytes {
        Bytes::new(self.m * self.k * dtype.size_bytes())
    }

    /// Bytes of the `[k × n]` weight operand.
    pub fn weight_bytes(self, dtype: DataType) -> Bytes {
        Bytes::new(self.k * self.n * dtype.size_bytes())
    }

    /// Bytes of the `[m × n]` output operand.
    pub fn output_bytes(self, dtype: DataType) -> Bytes {
        Bytes::new(self.m * self.n * dtype.size_bytes())
    }

    /// Sum of all three operand footprints.
    pub fn total_bytes(self, dtype: DataType) -> Bytes {
        self.activation_bytes(dtype) + self.weight_bytes(dtype) + self.output_bytes(dtype)
    }

    /// Arithmetic intensity in MACs per byte of unique traffic.
    pub fn arithmetic_intensity(self, dtype: DataType) -> f64 {
        self.macs() as f64 / self.total_bytes(dtype).get() as f64
    }

    /// Splits the `n` dimension into `parts` nearly equal shapes.
    ///
    /// Used to distribute output channels across multiple MXUs or
    /// tensor-parallel devices. Parts beyond `n` are dropped, so the
    /// returned vector may be shorter than `parts` but is never empty.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn split_n(self, parts: u64) -> Vec<GemmShape> {
        assert!(parts > 0, "cannot split a gemm into zero parts");
        let base = self.n / parts;
        let rem = self.n % parts;
        (0..parts)
            .map(|i| if i < rem { base + 1 } else { base })
            .filter(|&n| n > 0)
            .map(|n| GemmShape { m: self.m, k: self.k, n })
            .collect()
    }

    /// Returns this shape with `m` replaced.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if `m` is zero.
    pub fn with_m(self, m: u64) -> Result<Self> {
        GemmShape::new(m, self.k, self.n)
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} x {}] . [{} x {}]", self.m, self.k, self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dims() {
        assert!(GemmShape::new(0, 1, 1).is_err());
        assert!(GemmShape::new(1, 0, 1).is_err());
        assert!(GemmShape::new(1, 1, 0).is_err());
    }

    #[test]
    fn gemv_detection() {
        assert!(GemmShape::gemv(128, 1024).unwrap().is_gemv());
        assert!(!GemmShape::new(2, 128, 1024).unwrap().is_gemv());
    }

    #[test]
    fn byte_accounting() {
        let g = GemmShape::new(4, 8, 16).unwrap();
        assert_eq!(g.activation_bytes(DataType::Bf16).get(), 4 * 8 * 2);
        assert_eq!(g.weight_bytes(DataType::Int8).get(), 8 * 16);
        assert_eq!(g.output_bytes(DataType::Fp32).get(), 4 * 16 * 4);
        assert_eq!(
            g.total_bytes(DataType::Int8).get(),
            (4 * 8 + 8 * 16 + 4 * 16)
        );
    }

    #[test]
    fn split_n_conserves_work() {
        let g = GemmShape::new(8, 7168, 7168).unwrap();
        let parts = g.split_n(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.macs()).sum::<u64>(), g.macs());
        // Uneven split keeps every MAC exactly once.
        let parts = GemmShape::new(1, 3, 10).unwrap().split_n(3);
        assert_eq!(parts.iter().map(|p| p.n()).sum::<u64>(), 10);
    }

    #[test]
    fn split_n_drops_empty_parts() {
        let g = GemmShape::new(1, 1, 2).unwrap();
        let parts = g.split_n(5);
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.n() == 1));
    }

    #[test]
    fn decoding_gemv_has_low_intensity() {
        // LLM decode GEMV: intensity < 1 MAC/byte (memory bound);
        // prefill GEMM: orders of magnitude higher.
        let gemv = GemmShape::gemv(7168, 7168).unwrap();
        let gemm = GemmShape::new(8192, 7168, 7168).unwrap();
        assert!(gemv.arithmetic_intensity(DataType::Int8) < 1.0);
        assert!(gemm.arithmetic_intensity(DataType::Int8) > 1000.0);
    }
}
