//! Physical quantities and shared primitive types for the `cimtpu` simulator.
//!
//! Every other crate in the workspace builds on the newtypes defined here:
//! [`Cycles`], [`Seconds`], [`Joules`], [`Watts`], [`Bytes`], [`Bandwidth`],
//! [`Frequency`], [`Area`], the [`DataType`] enum describing operand
//! precisions, and the shared [`Error`] type.
//!
//! Newtypes are used instead of bare `f64`/`u64` so that, e.g., a latency in
//! cycles can never be accidentally added to a latency in seconds without an
//! explicit conversion through a [`Frequency`] (C-NEWTYPE).
//!
//! # Examples
//!
//! ```
//! use cimtpu_units::{Cycles, Frequency, Bytes, Bandwidth};
//!
//! let clk = Frequency::from_ghz(1.05);
//! let t = Cycles::new(2_100_000).at(clk);
//! assert!((t.as_millis() - 2.0).abs() < 1e-9);
//!
//! let dma = Bandwidth::from_gb_per_s(614.0).transfer_time(Bytes::from_mib(614));
//! assert!(dma.as_millis() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod datatype;
mod error;
mod quantity;
mod shape;

pub use datatype::DataType;
pub use error::{Error, Result};
pub use quantity::{Area, Bandwidth, Bytes, Cycles, Energy, Frequency, Joules, Seconds, Watts};
pub use shape::GemmShape;
