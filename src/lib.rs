//! `cimtpu` — a compute-in-memory TPU architecture simulator.
//!
//! Reproduction of *"Leveraging Compute-in-Memory for Efficient Generative
//! Model Inference in TPUs"* (DATE 2025). This facade crate re-exports the
//! workspace so downstream users depend on a single crate:
//!
//! - [`units`] — quantities, data types, GEMM shapes;
//! - [`systolic`] — the baseline digital MXU (SCALE-Sim-style);
//! - [`cim`] — the digital CIM macro and CIM-MXU grid;
//! - [`models`] — LLM/DiT workload builders and presets, structured into
//!   phase-tagged segments (Prefill / Decode / Conditioning / PrePost /
//!   Collective);
//! - [`mapper`] — the tiling/scheduling engine;
//! - [`core`] — the TPU architecture model and simulator;
//! - [`multi`] — multi-chip parallelism and throughput;
//! - [`kv`] — the KV-cache memory subsystem (per-request footprints,
//!   paged block allocation);
//! - [`serving`] — request-level serving simulation (open- and
//!   closed-loop traffic, batching policies, KV admission control /
//!   preemption / chunked prefill, latency percentiles);
//! - [`cluster`] — fleet-level serving (request routing over
//!   heterogeneous replica groups, disaggregated prefill/decode with KV
//!   handoff over the interconnect, closed-loop saturation studies);
//! - [`autoscale`] — the reconcile-loop autoscaling control plane
//!   (declarative per-group policies, deterministic scaling decisions,
//!   elasticity cost accounting) the cluster layer applies.
//!
//! The repo-root `ARCHITECTURE.md` maps the five-layer stack, the data
//! flow of one served request, the determinism/bit-identity contract,
//! and the `BENCH_*.json` CI-diff workflow; `README.md` has the build
//! quickstart and the scenario catalogs of the `serve_sim` /
//! `cluster_sim` binaries.
//!
//! # Quickstart
//!
//! ```
//! use cimtpu::prelude::*;
//!
//! // Build the two TPUs the paper compares.
//! let baseline = Simulator::new(TpuConfig::tpuv4i())?;
//! let cim_tpu = Simulator::new(TpuConfig::cim_base())?;
//!
//! // One GPT-3-30B decoding step at the 256th output token (Fig. 6).
//! let layer = presets::gpt3_30b().decode_layer(8, 1280)?;
//! let base = baseline.run(&layer)?;
//! let cim = cim_tpu.run(&layer)?;
//!
//! println!("decode speedup: {:.2}x", cim.speedup_vs(&base));
//! println!("MXU energy: {:.1}x less", cim.mxu_energy_reduction_vs(&base));
//! assert!(cim.speedup_vs(&base) > 1.0);
//! # Ok::<(), cimtpu::units::Error>(())
//! ```
//!
//! # Request-level serving
//!
//! The serving layer turns the per-workload simulator into a traffic
//! model: seeded open-loop arrivals, static / dynamic / continuous
//! batching, one or more chips (replicated or a tensor-parallel ring),
//! and p50/p95/p99 latency out the other end. Runs are deterministic for
//! a fixed seed.
//!
//! ```
//! use cimtpu::prelude::*;
//!
//! let engine = ServingEngine::new(
//!     TpuConfig::design_a(),
//!     ServingModel::Llm(presets::gpt3_6_7b()),
//!     Parallelism::Replicated { chips: 1 },
//!     BatchPolicy::Continuous { max_batch: 8 },
//! )?;
//! let traffic = TrafficSpec {
//!     requests: 4,
//!     arrival: ArrivalPattern::OpenLoop { rate_rps: 20.0 },
//!     prompt: LenDist::Fixed(64),
//!     steps: LenDist::Fixed(4),
//!     prefix: PrefixTraffic::None,
//!     seed: 1,
//! };
//! let run = engine.run("quickstart", &traffic)?;
//! assert_eq!(run.report.completed, 4);
//! println!("p99 latency: {:.2} ms", run.report.latency.p99_ms);
//! # Ok::<(), cimtpu::units::Error>(())
//! ```
//!
//! Under the hood each distinct `(phase, batch, length)` segment is priced
//! once through [`ExecutionContext`](core::ExecutionContext) and replayed
//! per request; set `CIMTPU_CACHE_DIR` to persist the mapping caches
//! underneath across processes.
//!
//! # Cluster-scale serving
//!
//! The cluster layer scales the request-level simulator to fleets: N
//! replica groups — each its own chip config, model, batching policy, and
//! KV budget — behind a pluggable router (round-robin,
//! least-outstanding, least-KV-occupancy, session-affinity), with
//! closed-loop client populations
//! ([`ArrivalPattern::ClosedLoop`](serving::ArrivalPattern)) and
//! DistServe-style **disaggregated prefill/decode**, where finished
//! prompts hand their paged KV cache to a decode pool over an
//! interconnect link priced in seconds and joules. A 1-replica cluster
//! with the pass-through router reproduces the single-engine
//! [`ServingReport`](serving::ServingReport) bit-for-bit (tested). See
//! `examples/cluster.rs` and the `cluster_sim` binary
//! (`BENCH_cluster.json` tracks the headline fleet metrics in CI).
//!
//! # KV-cache memory subsystem
//!
//! Serving is memory-bound before it is compute-bound: the KV cache, not
//! the MXUs, caps concurrency. A [`MemoryConfig`](serving::MemoryConfig)
//! budgets a paged allocator (`cimtpu-kv`) against the chip's HBM
//! capacity — admission control queues arrivals while no blocks are
//! free, decode steps that cannot grow evict the youngest resident
//! request (recompute-on-resume), and chunked prefill interleaves prompt
//! chunks with running decodes. See `examples/kv_pressure.rs` and the
//! `llm-kv-pressure` / `llm-chunked-prefill` scenarios in `serve_sim`;
//! `BENCH_serving.json` tracks the headline serving metrics alongside
//! `BENCH_sweep.json`.
//!
//! # Prefix sharing (copy-on-write KV blocks)
//!
//! Requests whose prompts open with a common head (a shared system
//! prompt, a few-shot preamble) compute identical KV state for it.
//! [`MemoryConfig::with_prefix_sharing`](serving::MemoryConfig::with_prefix_sharing)
//! gives every executor a [`PrefixIndex`](kv::PrefixIndex) — a
//! block-aligned radix tree over resident prompt blocks — so later
//! requests attach the cached blocks by reference (ref-counted; freed
//! only at the last reference), copy-on-write where their prompts
//! diverge mid-block, and price only their prompt *tails*. Traffic opts
//! in with [`PrefixTraffic::SharedHead`](serving::PrefixTraffic), and
//! fleets route hits onto the right replica with
//! [`RouterPolicy::PrefixAffinity`](cluster::RouterPolicy). Sharing
//! changes cost, never text: completions are token-for-token identical
//! to the unshared path (proptested across all three batching
//! policies), and with sharing off the engine is bit-identical to
//! before. See `examples/prefix_sharing.rs` and the
//! `llm-shared-prefix` / `cluster-shared-prefix` scenarios with their
//! cold controls.
//!
//! # Performance architecture: memoized pricing + parallel sweeps
//!
//! Design-space exploration evaluates full LLM/DiT inference across many
//! hardware points, and the same `(shape, dtype, residency)` mapping
//! queries recur constantly — identical transformer layers, the
//! decode-context samples inside [`inference::run_llm`](core::inference::run_llm),
//! and re-runs on one configuration. Two layers keep that fast:
//!
//! - **[`MappingCache`](core::MappingCache)** — every [`Simulator`](core::Simulator)
//!   memoizes per-operator pricing, so each distinct matrix query runs the
//!   Timeloop-style map-space search exactly once per configuration.
//!   Results are bit-identical with the cache on or off; inspect hit rates
//!   with [`Simulator::cache_stats`](core::Simulator::cache_stats).
//! - **`cimtpu_bench::sweep`** — a std-only work-stealing fan-out
//!   (`parallel_map` / `parallel_map_init`, rayon-style) that runs one
//!   memoized simulator per worker and returns results in item order, so
//!   parallel sweeps are output-identical to sequential ones. `fig7`,
//!   `sweep_extensions`, `moe_study`, and `repro_all` all route through it.
//!
//! For bulk pricing of many shapes against one engine outside the
//! simulator (map-space studies, external drivers),
//! [`Mapper::map_batch`](mapper::Mapper::map_batch) derives the VMEM
//! budget and engine granularities once per batch. The
//! `cargo bench -p cimtpu-bench --bench sweep` harness measures the
//! optimized path against the sequential uncached reference and exports
//! `BENCH_sweep.json` (single-core memoization alone: ~2.8× on the Fig. 7
//! exploration, ~3.5× on full LLM inference; the fan-out multiplies this
//! by the available cores).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cimtpu_autoscale as autoscale;
pub use cimtpu_cim as cim;
pub use cimtpu_cluster as cluster;
pub use cimtpu_core as core;
pub use cimtpu_kv as kv;
pub use cimtpu_mapper as mapper;
pub use cimtpu_models as models;
pub use cimtpu_multi as multi;
pub use cimtpu_serving as serving;
pub use cimtpu_systolic as systolic;
pub use cimtpu_units as units;

/// The most common imports for simulator users.
pub mod prelude {
    pub use cimtpu_core::{
        inference, ExecutionContext, MatrixEngine, MxuKind, PhasedReport, Report, SegmentCost,
        Simulator, TpuConfig,
    };
    pub use cimtpu_models::{
        presets, DitConfig, LlmInferenceSpec, LlmModelConfig, MoeConfig, Op, OpCategory,
        OpInstance, Phase, Segment,
        TransformerConfig, Workload,
    };
    pub use cimtpu_kv::{KvBudget, KvFootprint, PagedKvAllocator, PrefixIndex, PrefixStats};
    pub use cimtpu_multi::{MultiTpu, RingTopology};
    pub use cimtpu_serving::{
        ArrivalPattern, BatchPolicy, LenDist, MemoryConfig, MemoryStats, Parallelism,
        PrefixTraffic, PromptPrefix, ServingEngine, ServingModel, ServingReport, TrafficSpec,
    };
    pub use cimtpu_cluster::{
        ClusterEngine, ClusterReport, InterconnectSpec, ReplicaSpec, Router, RouterPolicy,
    };
    pub use cimtpu_units::{
        Bandwidth, Bytes, Cycles, DataType, Energy, Error, Frequency, GemmShape, Joules, Result,
        Seconds, Watts,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        use crate::prelude::*;
        let cfg = TpuConfig::design_a();
        let sim = Simulator::new(cfg).expect("preset is valid");
        assert!(sim.config().peak_tops() > 0.0);
    }
}
