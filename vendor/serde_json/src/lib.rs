//! Vendored JSON encoder/decoder over the shim `serde::Value` model.
//!
//! Implements the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], and [`from_str`] — with serde_json-compatible
//! output conventions: externally tagged enums, transparent newtypes,
//! shortest-round-trip float formatting, and `null` for non-finite floats.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON encoding/decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the serde_json API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (2-space indent).
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the serde_json API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = Parser { bytes: text.as_bytes(), pos: 0 }.parse_document()?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Debug formatting of f64 is Rust's shortest round-trip
                // representation and always keeps a decimal point.
                out.push_str(&format!("{x:?}"));
            } else {
                // serde_json cannot represent non-finite floats either.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i, d| {
                write_value(out, &items[i], indent, d);
            });
        }
        Value::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i, d| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, d);
            });
        }
    }
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Best-effort surrogate pairing for BMP+ text.
                            let c = if (0xD800..0xDC00).contains(&code)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        let v: Vec<f64> = from_str("[1.5, 2.0, -3]").unwrap();
        assert_eq!(v, vec![1.5, 2.0, -3.0]);
        let s: String = from_str(r#""a\nbA""#).unwrap();
        assert_eq!(s, "a\nbA");
        let pair: (u64, bool) = from_str("[7, true]").unwrap();
        assert_eq!(pair, (7, true));
    }

    #[test]
    fn pretty_output_is_indented() {
        let json = to_string_pretty(&vec![1u64, 2]).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn float_formatting_round_trips() {
        let x = 0.1f64 + 0.2;
        let json = to_string(&x).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5junk").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
    }
}
