//! Vendored property-testing shim for the offline cimtpu build.
//!
//! The real `proptest` crate cannot be fetched without network access, so
//! this shim implements the subset the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) expanding each property into a plain `#[test]` that samples a
//!   deterministic RNG for a configured number of cases;
//! - [`Strategy`] with `prop_map`, implemented for integer/float ranges,
//!   tuples, and [`collection::vec`];
//! - `any::<T>()` over the primitive [`Arbitrary`] types and
//!   [`bool::ANY`];
//! - [`prop_assert!`]/[`prop_assert_eq!`] mapped onto `assert!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the sampled values baked into the assertion message. Runs are fully
//! deterministic per test name; set `PROPTEST_CASES` to override the case
//! count.

/// The most common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Per-block configuration: number of cases to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Resolves the effective case count (`PROPTEST_CASES` overrides).
pub fn resolved_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(configured)
}

/// Deterministic xorshift64* RNG used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG from a test name (stable across runs).
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(seed | 1)
    }

    /// The next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform sample in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A recipe for sampling values of one type.
pub trait Strategy {
    /// The sampled value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates the full-range strategy for `T` (mirrors `proptest::arbitrary`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Integers sampleable uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                let span = (hi as i128) - (lo as i128);
                assert!(span > 0, "empty sample range");
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                lo + (rng.next_unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
sample_uniform_float!(f32, f64);

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

macro_rules! strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{SampleUniform, Strategy, TestRng};

    /// A strategy for `Vec`s with lengths in `len` and elements from
    /// `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vectors of `element` samples with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = usize::sample_range(self.len.start, self.len.end, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (mirrors `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy sampling both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// Uniformly random booleans.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = $crate::resolved_cases(__cfg.cases);
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

/// Asserts a property holds (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let x = Strategy::sample(&(5u64..10), &mut rng);
            assert!((5..10).contains(&x));
            let y = Strategy::sample(&(-8i8..8), &mut rng);
            assert!((-8..8).contains(&y));
            let f = Strategy::sample(&(-1.0f32..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let sample = |n: &str| {
            let mut rng = crate::TestRng::from_name(n);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(sample("a"), sample("a"));
        assert_ne!(sample("a"), sample("b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires patterns, strategies, and bodies together.
        #[test]
        fn macro_compiles_and_runs((a, b) in (0u64..100, 0u64..100), flip in crate::bool::ANY) {
            let vec = crate::collection::vec(0u32..10, 1..4).prop_map(|v| v.len());
            let mut rng = crate::TestRng::from_name("inner");
            let n = Strategy::sample(&vec, &mut rng);
            prop_assert!(n >= 1 && n < 4);
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(flip || !flip, true);
        }
    }
}
