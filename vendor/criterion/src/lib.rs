//! Vendored benchmark harness for the offline cimtpu build.
//!
//! Mirrors the criterion API surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group` with `sample_size`/`bench_with_input`) and measures
//! wall-clock mean/min over a fixed number of timed samples. There is no
//! statistical analysis; one line per bench is printed:
//!
//! ```text
//! fig7_exploration/ten_design_points  time: [mean 1.234 s, min 1.201 s, 10 samples]
//! ```
//!
//! When invoked with `--test` (as `cargo test` does for bench targets) each
//! bench runs exactly once as a smoke test.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness state.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 10, test_mode }
    }
}

/// Measured result of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

impl Criterion {
    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let m = run_bench(self.sample_size, self.test_mode, f);
        print_line(name, &m);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }
}

/// A named group of benchmarks sharing a sample-size override.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let m = run_bench(samples, self.criterion.test_mode, f);
        print_line(&format!("{}/{}", self.name, name), &m);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let m = run_bench(samples, self.criterion.test_mode, |b| f(b, input));
        print_line(&format!("{}/{}", self.name, id), &m);
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier: function name plus parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to bench closures; [`Bencher::iter`] times the hot loop.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        std::hint::black_box(f());
        self.times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(samples: usize, test_mode: bool, mut f: F) -> Measurement {
    let mut bencher = Bencher {
        samples: if test_mode { 1 } else { samples.max(1) },
        times: Vec::new(),
    };
    f(&mut bencher);
    let n = bencher.times.len().max(1);
    let total: Duration = bencher.times.iter().sum();
    Measurement {
        mean: total / n as u32,
        min: bencher.times.iter().min().copied().unwrap_or_default(),
        samples: n,
    }
}

fn print_line(name: &str, m: &Measurement) {
    println!(
        "{name:<48} time: [mean {}, min {}, {} samples]",
        format_duration(m.mean),
        format_duration(m.min),
        m.samples
    );
}

/// Formats a duration with criterion-style units.
pub fn format_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a group runner function (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main` (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_formats() {
        let m = run_bench(3, false, |b| b.iter(|| std::hint::black_box(2u64 + 2)));
        assert_eq!(m.samples, 3);
        assert!(m.min <= m.mean);
        assert!(format_duration(Duration::from_millis(5)).contains("ms"));
    }

    #[test]
    fn test_mode_runs_once() {
        let mut calls = 0u32;
        let m = run_bench(10, true, |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(m.samples, 1);
        // One warm-up + one timed sample.
        assert_eq!(calls, 2);
    }
}
