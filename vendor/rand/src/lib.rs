//! Vendored `rand` shim for the offline cimtpu build.
//!
//! Provides the subset the test-suite uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer and
//! float ranges. The generator is a deterministic xorshift64* — statistical
//! quality is ample for generating random test matrices, and the stream is
//! stable across runs (it does *not* match the real `StdRng`).

/// Types that produce raw 64-bit randomness.
pub trait RngCore {
    /// The next raw 64-bit sample.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled for a value of type `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete RNG types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard RNG: deterministic xorshift64*.
    #[derive(Debug, Clone)]
    pub struct StdRng(u64);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Splitmix the seed so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng((z ^ (z >> 31)) | 1)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

macro_rules! sample_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "cannot sample from empty range");
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(hi >= lo, "cannot sample from empty range");
                let span = (hi - lo + 1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo + offset) as $t
            }
        }
    )*};
}
sample_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}
sample_float_ranges!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!((1..=12).contains(&rng.gen_range(1..=12usize)));
            let x = rng.gen_range(-128i8..=127);
            assert!((-128..=127).contains(&x));
            let f = rng.gen_range(-8.0f32..8.0);
            assert!((-8.0..8.0).contains(&f));
        }
    }

    #[test]
    fn seeded_streams_are_deterministic() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..4).map(|_| rng.gen_range(0u64..1000)).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }
}
