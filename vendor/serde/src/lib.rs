//! Vendored serialization core for the offline cimtpu build.
//!
//! The workspace builds without network access, so the real `serde` cannot
//! be fetched. This shim keeps the same import surface the simulator code
//! uses (`use serde::{Deserialize, Serialize}` plus the derive macros) but
//! is built around a simple self-describing [`Value`] tree instead of
//! serde's visitor machinery. The vendored `serde_json` crate renders and
//! parses that tree as real JSON with serde-compatible conventions
//! (externally tagged enums, transparent newtypes).

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence of exactly `len` items.
    pub fn as_seq(&self, len: usize) -> Option<&[Value]> {
        match self {
            Value::Seq(items) if items.len() == len => Some(items),
            _ => None,
        }
    }

    /// Decomposes an externally tagged enum payload: a one-entry map.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Map(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable path and reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn custom(msg: &str) -> Self {
        DeError(msg.to_owned())
    }

    /// Prefixes the error with the field it occurred under.
    #[must_use]
    pub fn in_field(self, field: &str) -> Self {
        DeError(format!("{field}: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialized value model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Fallback when a struct field is absent (`Option` yields `None`).
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] for every type without a missing-field default.
    fn from_missing() -> Result<Self, DeError> {
        Err(DeError::custom("missing field"))
    }
}

/// Looks up `key` in a struct map and deserializes it (derive helper).
///
/// # Errors
///
/// Returns a [`DeError`] naming the field when it is missing or mistyped.
pub fn __de_field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| e.in_field(key)),
        None => T::from_missing().map_err(|e| e.in_field(key)),
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::U64(x) => x,
                    Value::I64(x) if x >= 0 => x as u64,
                    Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                        x as u64
                    }
                    _ => return Err(DeError::custom("expected unsigned integer")),
                };
                <$t>::try_from(raw).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) if x <= i64::MAX as u64 => x as i64,
                    Value::F64(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => x as i64,
                    _ => return Err(DeError::custom("expected integer")),
                };
                <$t>::try_from(raw).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(f64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::F64(x) => Ok(x as $t),
                    Value::U64(x) => Ok(x as $t),
                    Value::I64(x) => Ok(x as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::custom("expected number")),
                }
            }
        }
    )*};
}
serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing() -> Result<Self, DeError> {
        Ok(None)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                let items = v
                    .as_seq(LEN)
                    .ok_or_else(|| DeError::custom("expected tuple sequence"))?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        let v = vec![1.5f64, 2.5];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn missing_option_defaults_to_none() {
        let map: Vec<(String, Value)> = Vec::new();
        let x: Option<u64> = __de_field(&map, "absent").unwrap();
        assert_eq!(x, None);
        assert!(__de_field::<u64>(&map, "absent").is_err());
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()).unwrap(), t);
    }
}
