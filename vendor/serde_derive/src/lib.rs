//! Vendored `Serialize`/`Deserialize` derive macros for the offline build.
//!
//! This workspace builds without network access, so the real `serde_derive`
//! cannot be fetched; this shim implements the subset the simulator needs:
//! plain (attribute-free) derives on non-generic named structs, tuple
//! structs, and enums with unit / newtype / struct variants. The generated
//! code targets the vendored `serde` value model (`serde::Value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored value-model flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (vendored value-model flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (arity only).
    Tuple(usize),
    /// No payload.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Parses the derive input far enough to know names and shapes.
fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Skip the attribute group that follows (`#[...]`).
                let _ = iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Skip an optional visibility qualifier group: `pub(crate)`.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut iter);
                reject_generics(&mut iter, &name);
                let fields = match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                    other => panic!("unsupported struct body for {name}: {other:?}"),
                };
                return Item::Struct { name, fields };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut iter);
                reject_generics(&mut iter, &name);
                let body = match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                    other => panic!("unsupported enum body for {name}: {other:?}"),
                };
                return Item::Enum { name, variants: parse_variants(body) };
            }
            Some(_) => {}
            None => panic!("derive input contained no struct or enum"),
        }
    }
}

fn expect_ident(iter: &mut impl Iterator<Item = TokenTree>) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn reject_generics(
    iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    name: &str,
) {
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde derive does not support generic type {name}");
        }
    }
}

/// Extracts field names from a `{ ... }` body, skipping attributes,
/// visibility, and the (angle-bracket aware) type of each field.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and doc comments on the field.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                let _ = iter.next();
                let _ = iter.next();
            } else {
                break;
            }
        }
        let name = loop {
            match iter.next() {
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("expected field name, found {other:?}"),
                None => return names,
            }
        };
        names.push(name);
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field name, found {other:?}"),
        }
        // Consume the type: everything until a comma at angle depth 0.
        let mut depth = 0i32;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => return names,
            }
        }
    }
}

/// Counts fields of a tuple struct/variant body `( ... )`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        fields += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                let _ = iter.next();
                let _ = iter.next();
            } else {
                break;
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected variant name, found {other:?}"),
            None => return variants,
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                let _ = iter.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                let _ = iter.next();
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => panic!("expected ',' after variant, found {other:?}"),
            None => return variants,
        }
    }
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::__de_field(__m, \"{f}\")?,"))
                        .collect();
                    format!(
                        "let __m = __v.as_map().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected map for {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(" ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                        .collect();
                    format!(
                        "let __s = __v.as_seq({n}).ok_or_else(|| \
                             ::serde::DeError::custom(\"expected {n}-seq for {name}\"))?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name)
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __s = __payload.as_seq({n}).ok_or_else(|| \
                                         ::serde::DeError::custom(\"expected seq for {name}::{vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::__de_field(__m, \"{f}\")?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __m = __payload.as_map().ok_or_else(|| \
                                         ::serde::DeError::custom(\"expected map for {name}::{vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }},",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     &::std::format!(\"unknown variant {{__other}} of {name}\"))),\n\
                             }},\n\
                             __v => {{\n\
                                 let (__tag, __payload) = __v.as_variant().ok_or_else(|| \
                                     ::serde::DeError::custom(\"expected variant map for {name}\"))?;\n\
                                 match __tag {{\n\
                                     {}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                         &::std::format!(\"unknown variant {{__other}} of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    }
}
