//! DiT image-generation analysis: one DiT-XL/2 forward pass per design
//! point, plus the per-category breakdown showing the softmax bottleneck.
//!
//! Run with: `cargo run --release --example dit_inference`

use cimtpu::prelude::*;

fn main() -> Result<()> {
    let dit = presets::dit_xl_2();
    let (batch, resolution, steps) = (8, 512, 50);

    println!(
        "DiT-XL/2 @ {resolution}x{resolution}, batch {batch}, {steps}-step sampler, INT8\n"
    );
    println!(
        "{:<18} {:>14} {:>14} {:>12}",
        "config", "forward (ms)", "MXU E (mJ)", "img/s"
    );
    for cfg in [
        TpuConfig::tpuv4i(),
        TpuConfig::cim_base(),
        TpuConfig::design_b(),
    ] {
        let sim = Simulator::new(cfg)?;
        let r = inference::run_dit(&sim, &dit, batch, resolution)?;
        println!(
            "{:<18} {:>14.2} {:>14.1} {:>12.3}",
            sim.config().name(),
            r.total_latency.as_millis(),
            r.total_mxu_energy.as_millijoules(),
            r.images_per_second(steps),
        );
    }

    // Where does a DiT block spend its time? (Fig. 6, right.)
    let sim = Simulator::new(TpuConfig::tpuv4i())?;
    let block = sim.run(&dit.block(batch, resolution)?)?;
    println!("\nBaseline DiT block breakdown (softmax is the bottleneck):");
    for row in block.by_category() {
        println!(
            "  {:<14} {:>8.3} ms ({:>5.1}%)",
            row.category.label(),
            row.latency.as_millis(),
            row.latency_fraction * 100.0
        );
    }
    Ok(())
}
