//! KV-cache pressure: the same decode-heavy traffic served with
//! unlimited KV memory and with a tight paged budget — admission control,
//! preemption (recompute-on-resume), and chunked prefill in action.
//!
//! Run with: `cargo run --release --example kv_pressure`

use cimtpu::prelude::*;

fn main() -> Result<()> {
    let model = presets::gpt3_6_7b();

    // What one request costs in KV memory: the footprint is derived from
    // the same geometry the workload builders price.
    let fp = KvFootprint::of(&model);
    let budget = Bytes::from_gib(1);
    println!(
        "{}: {} KiB of KV per token ({} B/token/layer); weights occupy {:.2} GiB",
        model.name(),
        fp.bytes_per_token().get() / 1024,
        fp.bytes_per_token_per_layer().get(),
        fp.weight_bytes().get() as f64 / (1u64 << 30) as f64,
    );
    println!(
        "a 128-prompt / 256-step request holds up to {:.1} MiB of KV; \
         a {} MiB budget fits {} tokens",
        fp.request_bytes(128 + 256).as_mib(),
        budget.as_mib(),
        fp.tokens_fitting(budget),
    );

    let traffic = TrafficSpec {
        requests: 40,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 6.0 },
        prompt: LenDist::Fixed(128),
        steps: LenDist::Uniform { lo: 64, hi: 256 },
        prefix: PrefixTraffic::None,
        seed: 0xC1A0,
    };
    let engine = |memory: MemoryConfig| -> Result<ServingEngine> {
        Ok(ServingEngine::new(
            TpuConfig::design_a(),
            ServingModel::Llm(presets::gpt3_6_7b()),
            Parallelism::Replicated { chips: 1 },
            BatchPolicy::Continuous { max_batch: 16 },
        )?
        .with_memory(memory))
    };

    // Unlimited KV: the memory-oblivious scheduler (pre-PR-3 behaviour).
    let unlimited = engine(MemoryConfig::unlimited())?.run("unlimited", &traffic)?;
    println!("{}", unlimited.report);

    // A 1 GiB paged budget: arrivals queue while no blocks are free, and
    // decode growth evicts the youngest resident when they run out.
    let tight = MemoryConfig::unlimited().with_budget_bytes(budget);
    let pressured = engine(tight)?.run("1 GiB KV budget", &traffic)?;
    println!("{}", pressured.report);

    // Chunked prefill on top: prompts ingest in 32-token chunks, so
    // running decodes interleave instead of stalling behind prefill.
    let chunked = engine(tight.with_chunked_prefill(32))?.run("+ chunked prefill", &traffic)?;
    println!("{}", chunked.report);

    println!(
        "pressure cost: makespan {:.2}x, p99 latency {:.2}x, {} preemption(s), \
         {:.3} s queue-full",
        pressured.report.makespan_s / unlimited.report.makespan_s,
        pressured.report.latency.p99_ms / unlimited.report.latency.p99_ms,
        pressured.report.preemptions,
        pressured.report.queue_full_s,
    );
    Ok(())
}
