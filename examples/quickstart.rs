//! Quickstart: compare one GPT-3-30B decoding step on the baseline TPUv4i
//! and the CIM-based TPU — the paper's headline Fig. 6 result in ~20 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use cimtpu::prelude::*;

fn main() -> Result<()> {
    // The two architectures of Table I.
    let baseline = Simulator::new(TpuConfig::tpuv4i())?;
    let cim_tpu = Simulator::new(TpuConfig::cim_base())?;

    // One Transformer layer of GPT-3-30B decoding the 256th output token
    // after a 1024-token prompt, batch 8, INT8 (the Fig. 6 setup).
    let gpt3 = presets::gpt3_30b();
    let layer = gpt3.decode_layer(8, 1024 + 256)?;

    let base = baseline.run(&layer)?;
    let cim = cim_tpu.run(&layer)?;

    println!("{base}");
    println!("{cim}");
    println!(
        "CIM-based TPU: {:.1}% faster, {:.1}x less MXU energy on LLM decoding",
        (1.0 - cim.total_latency() / base.total_latency()) * 100.0,
        cim.mxu_energy_reduction_vs(&base),
    );
    Ok(())
}
