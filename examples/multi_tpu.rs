//! Multi-TPU serving: scale GPT-3-30B and DiT-XL/2 across a ring of 1-4
//! chips with pipeline parallelism, and compare tensor parallelism for the
//! latency-critical decode path.
//!
//! Run with: `cargo run --release --example multi_tpu`

use cimtpu::prelude::*;

fn main() -> Result<()> {
    let gpt3 = presets::gpt3_30b();
    let spec = LlmInferenceSpec::paper_fig7(8)?;

    println!("Pipeline parallelism over the ICI ring (Fig. 8 setup):\n");
    println!(
        "{:<12} {:>5} {:>12} {:>14} {:>12}",
        "config", "TPUs", "LLM tok/s", "J/token", "DiT img/s"
    );
    for cfg in [TpuConfig::tpuv4i(), TpuConfig::design_a(), TpuConfig::design_b()] {
        for devices in [1u64, 2, 4] {
            let cluster = MultiTpu::new(cfg.clone(), devices)?;
            let llm = cluster.llm_pipeline_throughput(&gpt3, spec)?;
            let dit = cluster.dit_pipeline_throughput(&presets::dit_xl_2(), 8, 512, 50)?;
            println!(
                "{:<12} {:>5} {:>12.1} {:>14.4} {:>12.3}",
                cfg.name(),
                devices,
                llm.throughput,
                llm.mxu_energy_per_unit.get(),
                dit.throughput,
            );
        }
    }

    println!("\nTensor parallelism for latency (one decode-layer step, ctx 1280):");
    for devices in [1u64, 2, 4] {
        let cluster = MultiTpu::new(TpuConfig::cim_base(), devices)?;
        let t = cluster.llm_tensor_parallel_decode_layer(&gpt3, 8, 1280)?;
        println!("  {devices} TPUs: {:.3} ms/layer", t.as_millis());
    }
    println!(
        "\nPipeline parallelism maximizes throughput; tensor parallelism cuts\n\
         per-token latency by sharding each layer's weights across chips."
    );
    Ok(())
}
