//! End-to-end LLM serving analysis: full GPT-3-30B inference (prefill +
//! decode) across the baseline, the default CIM TPU, and Design A,
//! reporting per-stage latency, energy and tokens/s.
//!
//! Run with: `cargo run --release --example llm_inference`

use cimtpu::prelude::*;

fn main() -> Result<()> {
    let gpt3 = presets::gpt3_30b();
    // The paper's "typical real-world scenario": 1024 in, 512 out, batch 8.
    let spec = LlmInferenceSpec::paper_fig7(8)?;

    println!(
        "GPT-3-30B inference: batch {}, {} input + {} output tokens, INT8\n",
        spec.batch(),
        spec.input_len(),
        spec.output_len()
    );
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "config", "prefill (s)", "decode (s)", "total (s)", "MXU E (J)", "tok/s"
    );

    for cfg in [
        TpuConfig::tpuv4i(),
        TpuConfig::cim_base(),
        TpuConfig::design_a(),
        TpuConfig::design_b(),
    ] {
        let sim = Simulator::new(cfg)?;
        let r = inference::run_llm(&sim, &gpt3, spec)?;
        println!(
            "{:<18} {:>12.2} {:>12.2} {:>12.2} {:>12.1} {:>10.1}",
            sim.config().name(),
            r.prefill_latency.get(),
            r.decode_latency.get(),
            r.total_latency().get(),
            r.total_mxu_energy().get(),
            r.tokens_per_second(),
        );
    }

    println!(
        "\nObservation (paper Sec. V-A): decoding dominates; Design A trades\n\
         peak compute for energy, which the memory-bound decode barely notices."
    );
    Ok(())
}
