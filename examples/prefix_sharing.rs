//! Prefix sharing: the same shared-system-prompt traffic served cold
//! (every prompt recomputed) and with copy-on-write KV block sharing —
//! plus a fleet where prefix-affinity routing concentrates each shared
//! head on the replica already holding its blocks.
//!
//! Run with: `cargo run --release --example prefix_sharing`

use cimtpu::prelude::*;

fn main() -> Result<()> {
    // 24 requests whose prompts open with one of two 512-token system
    // prompts (tails are unique). Requests with equal heads compute
    // identical KV state for them — the work prefix sharing removes.
    let traffic = TrafficSpec {
        requests: 24,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 6.0 },
        prompt: LenDist::Uniform { lo: 640, hi: 1024 },
        steps: LenDist::Fixed(32),
        prefix: PrefixTraffic::SharedHead { tokens: 512, groups: 2 },
        seed: 0xC1A0,
    };
    let engine = |memory: MemoryConfig| -> Result<ServingEngine> {
        Ok(ServingEngine::new(
            TpuConfig::design_a(),
            ServingModel::Llm(presets::gpt3_6_7b()),
            Parallelism::Replicated { chips: 1 },
            BatchPolicy::Continuous { max_batch: 8 },
        )?
        .with_memory(memory))
    };

    // Cold: every request pays its full prefill.
    let cold = engine(MemoryConfig::unlimited())?.run("cold prefix", &traffic)?;
    println!("{}", cold.report);

    // Shared: each executor keeps a radix index over resident prompt
    // blocks; later requests attach the cached head by reference
    // (copy-on-write where their prompts diverge mid-block) and price
    // only their tails.
    let shared =
        engine(MemoryConfig::unlimited().with_prefix_sharing())?.run("shared prefix", &traffic)?;
    println!("{}", shared.report);
    println!("prefix cache  {}", shared.prefix);
    println!(
        "sharing win: TTFT {:.2}x lower, energy {:.2}x lower — completions are \
         token-for-token identical\n",
        cold.report.ttft.mean_ms / shared.report.ttft.mean_ms,
        cold.report.total_energy_j / shared.report.total_energy_j,
    );

    // Fleet-level: prefix-affinity routing hashes each request's
    // shared-head identity, so a head's requests land where its KV blocks
    // already live instead of re-prefilling once per replica.
    let replica = |name: &str| {
        ReplicaSpec::new(name, TpuConfig::design_a(), ServingModel::Llm(presets::gpt3_6_7b()))
            .with_policy(BatchPolicy::Continuous { max_batch: 8 })
            .with_memory(MemoryConfig::unlimited().with_prefix_sharing())
    };
    let fleet = ClusterEngine::colocated(
        vec![replica("prefix-0"), replica("prefix-1")],
        RouterPolicy::PrefixAffinity,
    )?;
    let run = fleet.run("prefix-affinity fleet", &traffic)?;
    println!("{}", run.report);
    println!("fleet prefix cache  {}", run.prefix);
    Ok(())
}
