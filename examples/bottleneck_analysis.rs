//! Bottleneck analysis: roofline placement + execution timeline for a
//! GPT-3-30B decode layer on both architectures, plus the dynamic/static
//! energy split that explains the paper's 13.4x decode energy reduction.
//!
//! Run with: `cargo run --release --example bottleneck_analysis`

use cimtpu::core::roofline::{self, RooflineModel};
use cimtpu::core::timeline::Timeline;
use cimtpu::prelude::*;

fn main() -> Result<()> {
    let gpt3 = presets::gpt3_30b();
    let layer = gpt3.decode_layer(8, 1280)?;

    for cfg in [TpuConfig::tpuv4i(), TpuConfig::cim_base()] {
        let sim = Simulator::new(cfg)?;
        let report = sim.run(&layer)?;

        println!("==== {} ====", sim.config().name());

        // 1. Where does each matrix op sit on the roofline?
        let model = RooflineModel::of(&sim);
        println!(
            "roofline ridge: {:.1} MACs/byte (peak {:.1} TMAC/s, HBM {:.0} GB/s)",
            model.ridge_intensity(),
            model.peak_macs_per_s / 1e12,
            model.hbm_bytes_per_s / 1e9
        );
        for p in roofline::analyze(&sim, &layer)? {
            println!(
                "  {:<14} intensity {:>7.2} MACs/B  achieved {:>6.2} TMAC/s \
                 ({:>5.1}% of roofline, {:?}-bound)",
                p.name,
                p.intensity,
                p.achieved_macs_per_s / 1e12,
                p.roofline_efficiency() * 100.0,
                p.bound,
            );
        }

        // 2. When does each op run?
        println!("\n{}", Timeline::from_report(&report).render_ascii(56));

        // 3. Where does the MXU energy go?
        println!(
            "MXU energy: {:.3} mJ total = {:.3} mJ dynamic + {:.3} mJ leakage\n",
            report.mxu_energy().as_millijoules(),
            report.mxu_dynamic_energy().as_millijoules(),
            report.mxu_static_energy().as_millijoules(),
        );
    }

    println!(
        "Takeaway: every decode op is memory-bound on both chips, but the\n\
         baseline burns leakage in 16k idle MACs while attention serializes;\n\
         the CIM-MXU finishes attention at the KV-bandwidth limit and leaks\n\
         an order of magnitude less."
    );
    Ok(())
}
