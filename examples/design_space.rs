//! Design-space exploration: sweep custom CIM-MXU configurations beyond
//! Table IV and find the best design for your own workload mix.
//!
//! Run with: `cargo run --release --example design_space`

use cimtpu::prelude::*;

fn main() -> Result<()> {
    let gpt3 = presets::gpt3_30b();
    let spec = LlmInferenceSpec::new(8, 1024, 256)?;
    let dit = presets::dit_xl_2();

    // A finer grid than Table IV, including asymmetric options.
    let mut candidates = Vec::new();
    for &count in &[2u64, 4, 6, 8] {
        for &(gr, gc) in &[(8u64, 8u64), (8, 16), (16, 8), (16, 16), (32, 8)] {
            candidates.push(TpuConfig::cim_variant(count, gr, gc));
        }
    }

    // Objective: energy-delay product over a 70/30 LLM/DiT workload mix.
    println!("{:<22} {:>10} {:>12} {:>12} {:>14}", "config", "peak TOPS", "LLM EDP", "DiT EDP", "mixed EDP");
    let mut best: Option<(String, f64)> = None;
    for cfg in candidates {
        let sim = Simulator::new(cfg)?;
        let llm = inference::run_llm(&sim, &gpt3, spec)?;
        let dit_run = inference::run_dit(&sim, &dit, 8, 512)?;
        let llm_edp = llm.total_latency().get() * llm.total_mxu_energy().get();
        let dit_edp = dit_run.total_latency.get() * dit_run.total_mxu_energy.get();
        // Normalize the two objectives before mixing.
        let mixed = 0.7 * llm_edp + 0.3 * dit_edp * 1e3;
        println!(
            "{:<22} {:>10.1} {:>12.3} {:>12.6} {:>14.3}",
            sim.config().name(),
            sim.config().peak_tops(),
            llm_edp,
            dit_edp,
            mixed
        );
        match &best {
            Some((_, b)) if *b <= mixed => {}
            _ => best = Some((sim.config().name().to_owned(), mixed)),
        }
    }

    let (name, edp) = best.expect("non-empty sweep");
    println!("\nBest energy-delay design for the 70/30 mix: {name} (EDP {edp:.3})");
    Ok(())
}
