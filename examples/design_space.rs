//! Design-space exploration: sweep custom CIM-MXU configurations beyond
//! Table IV and find the best design for your own workload mix, then
//! batch-price the decode layer's weight GEMMs on the winner with
//! [`Mapper::map_batch`].
//!
//! Run with: `cargo run --release --example design_space`

use cimtpu::mapper::{GemmQuery, TileCostModel};
use cimtpu::prelude::*;

/// Adapter pricing tiles on a [`MatrixEngine`] for the mapper.
struct EngineModel<'a> {
    engine: &'a MatrixEngine,
    clock: Frequency,
}

impl TileCostModel for EngineModel<'_> {
    fn tile_cycles(&self, shape: GemmShape, dtype: DataType) -> Cycles {
        self.engine.gemm_cycles(shape, dtype)
    }
    fn clock(&self) -> Frequency {
        self.clock
    }
    fn preferred_k(&self) -> u64 {
        self.engine.preferred_k()
    }
    fn preferred_n(&self) -> u64 {
        self.engine.preferred_n()
    }
}

fn main() -> Result<()> {
    let gpt3 = presets::gpt3_30b();
    let spec = LlmInferenceSpec::new(8, 1024, 256)?;
    let dit = presets::dit_xl_2();

    // A finer grid than Table IV, including asymmetric options.
    let mut candidates = Vec::new();
    for &count in &[2u64, 4, 6, 8] {
        for &(gr, gc) in &[(8u64, 8u64), (8, 16), (16, 8), (16, 16), (32, 8)] {
            candidates.push(TpuConfig::cim_variant(count, gr, gc));
        }
    }

    // Objective: energy-delay product over a 70/30 LLM/DiT workload mix.
    println!("{:<22} {:>10} {:>12} {:>12} {:>14}", "config", "peak TOPS", "LLM EDP", "DiT EDP", "mixed EDP");
    let mut best: Option<(TpuConfig, f64)> = None;
    for cfg in candidates {
        let sim = Simulator::new(cfg)?;
        let llm = inference::run_llm(&sim, &gpt3, spec)?;
        let dit_run = inference::run_dit(&sim, &dit, 8, 512)?;
        let llm_edp = llm.total_latency().get() * llm.total_mxu_energy().get();
        let dit_edp = dit_run.total_latency.get() * dit_run.total_mxu_energy.get();
        // Normalize the two objectives before mixing.
        let mixed = 0.7 * llm_edp + 0.3 * dit_edp * 1e3;
        println!(
            "{:<22} {:>10.1} {:>12.3} {:>12.6} {:>14.3}",
            sim.config().name(),
            sim.config().peak_tops(),
            llm_edp,
            dit_edp,
            mixed
        );
        match &best {
            Some((_, b)) if *b <= mixed => {}
            _ => best = Some((sim.config().clone(), mixed)),
        }
    }

    let (winner, edp) = best.expect("non-empty sweep");
    println!(
        "\nBest energy-delay design for the 70/30 mix: {} (EDP {edp:.3})",
        winner.name()
    );

    // Map-space study on the winner: batch-price every weight GEMM of a
    // decode layer against its engine. `map_batch` derives the VMEM budget
    // and preferred tile granularities once for the whole batch.
    let sim = Simulator::new(winner)?;
    let layer = gpt3.decode_layer(8, 1280)?;
    let queries: Vec<GemmQuery> = layer
        .ops()
        .iter()
        .filter_map(|inst| match *inst.op() {
            Op::Gemm { shape, dtype } => Some(GemmQuery::streamed(
                shape.split_n(sim.config().mxu_count())[0],
                dtype,
            )),
            _ => None,
        })
        .collect();
    let engine = EngineModel { engine: sim.engine(), clock: sim.config().clock() };
    let mappings = sim.per_mxu_mapper().map_batch(&queries, &engine)?;
    println!("\nChosen tilings on {} (per-MXU shards):", sim.config().name());
    for (q, m) in queries.iter().zip(&mappings) {
        println!(
            "  {:<28} tile [{} x {} x {}] x{:<4} {:>8.1} us ({})",
            q.shape.to_string(),
            m.tile().m(),
            m.tile().k(),
            m.tile().n(),
            m.tiles(),
            m.total().as_micros(),
            if m.is_memory_bound() { "memory-bound" } else { "compute-bound" },
        );
    }
    Ok(())
}
