//! Cluster-scale serving: a heterogeneous colocated fleet behind a
//! load-aware router, the same hardware disaggregated into prefill and
//! decode pools with KV handoff over the interconnect, and a closed-loop
//! client population saturating the fleet.
//!
//! Run with: `cargo run --release --example cluster`

use cimtpu::prelude::*;

fn main() -> Result<()> {
    let model = ServingModel::Llm(presets::gpt3_6_7b());
    let traffic = TrafficSpec {
        requests: 24,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 5.0 },
        prompt: LenDist::Uniform { lo: 512, hi: 1024 },
        steps: LenDist::Fixed(32),
        prefix: PrefixTraffic::None,
        seed: 0xC1A0,
    };

    // A colocated fleet: three Design A chips, least-outstanding routing.
    let colocated = ClusterEngine::colocated(
        vec![
            ReplicaSpec::new("colo-0", TpuConfig::design_a(), model.clone()),
            ReplicaSpec::new("colo-1", TpuConfig::design_a(), model.clone()),
            ReplicaSpec::new("colo-2", TpuConfig::design_a(), model.clone()),
        ],
        RouterPolicy::LeastOutstanding,
    )?
    .run("colocated", &traffic)?;
    println!("{}", colocated.report);

    // The same three chips disaggregated: one dedicated prefill chip
    // hands each finished prompt's paged KV cache over an ICI-class link
    // to two decode chips (placement by KV occupancy).
    let disaggregated = ClusterEngine::disaggregated(
        vec![ReplicaSpec::new("prefill-0", TpuConfig::design_a(), model.clone())],
        vec![
            ReplicaSpec::new("decode-0", TpuConfig::design_a(), model.clone()),
            ReplicaSpec::new("decode-1", TpuConfig::design_a(), model.clone()),
        ],
        RouterPolicy::PassThrough,
        RouterPolicy::LeastKv,
        InterconnectSpec::ici(),
    )?
    .run("disaggregated", &traffic)?;
    println!("{}", disaggregated.report);
    println!(
        "disaggregation moved {:.1} MiB of KV over the wire in {} transfer(s) \
         ({:.3} ms link time, {:.3} mJ)\n",
        disaggregated.report.kv_transfer_bytes as f64 / (1 << 20) as f64,
        disaggregated.report.kv_transfers,
        disaggregated.report.kv_transfer_s * 1e3,
        disaggregated.report.kv_transfer_energy_j * 1e3,
    );

    // Closed-loop saturation: 16 clients, each re-issuing after 50 ms of
    // think time — offered load tracks what the fleet can absorb.
    let closed = ClusterEngine::colocated(
        vec![
            ReplicaSpec::new("cl-0", TpuConfig::design_a(), model.clone()),
            ReplicaSpec::new("cl-1", TpuConfig::design_a(), model),
        ],
        RouterPolicy::LeastOutstanding,
    )?
    .with_slo_ms(4_000.0)
    .run(
        "closed-loop",
        &TrafficSpec {
            arrival: ArrivalPattern::ClosedLoop { clients: 16, think_ms: 50.0 },
            ..traffic
        },
    )?;
    println!("{}", closed.report);
    Ok(())
}
